// A fleet of cache servers addressed through consistent hashing (paper §4): every application
// node holds the full node list and maps keys directly to the owning server.
//
// Every data-plane RPC (Lookup, MultiLookup, Insert, intent acquire/release) is issued
// through a CacheTransport (src/net/transport.h): the loopback transport keeps the original
// in-process method-call path, the socket transport rides the binary wire protocol over real
// TCP. AddNode(CacheServer*) picks the transport via the process-global default factory
// (TXCACHE_TRANSPORT=socket flips the whole suite); management operations — membership,
// stats, snapshots, hot-key export, replication hooks — reach the node's in-process server
// object via CacheTransport::local_server().
//
// Membership is dynamic (docs/architecture.md §"Membership and recovery"): AddNode/RemoveNode
// may race with lookups from application threads, so the ring and node map live behind a
// shared mutex, and every successful change bumps the ring's membership epoch. Cluster-level
// Lookup/Insert/MultiLookup stamp that epoch on their responses so clients can detect stale
// routing and refresh it. Churn is never an error: a key whose owner is departed or unroutable
// degrades to a kNodeUnavailable miss (counted in CacheStats::nodes_unavailable), and a down
// or joining node answers its own positions as misses — the caller recomputes, exactly as the
// paper's "a vanished node is just misses" failure model prescribes. Transport failures
// (connect refused, timeout, mid-request disconnect) degrade identically: the socket
// transport absorbs them into kNodeUnavailable answers before the cluster ever sees them.
#ifndef SRC_CACHE_CACHE_CLUSTER_H_
#define SRC_CACHE_CACHE_CLUSTER_H_

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/cache/cache_server.h"
#include "src/cluster/consistent_hash.h"
#include "src/net/transport.h"
#include "src/util/hash.h"

namespace txcache {

class CacheCluster {
 public:
  explicit CacheCluster(size_t virtual_nodes_per_node = 64) : ring_(virtual_nodes_per_node) {}

  // The cluster does not own servers; callers keep them alive. The transport wrapping the
  // server comes from the default factory (loopback unless TXCACHE_TRANSPORT=socket or an
  // installed factory says otherwise).
  bool AddNode(CacheServer* server) { return AddNode(MakeDefaultTransport(server)); }

  // Explicit-transport form (tests aim transports at dead endpoints; deployments mix nodes).
  bool AddNode(std::shared_ptr<CacheTransport> transport) {
    if (transport == nullptr) {
      return false;
    }
    size_t auto_keys = 0;
    {
      std::unique_lock<std::shared_mutex> lock(mu_);
      if (!ring_.AddNode(transport->name())) {
        return false;
      }
      nodes_[transport->name()] = transport;
      auto_keys = auto_replication_keys_;
    }
    // A node joining a fleet with auto-replication enabled gets the hook immediately (outside
    // the membership lock: set_replication_hook takes the server's own leaf mutex).
    CacheServer* server = transport->local_server();
    if (auto_keys != 0 && server != nullptr) {
      AttachReplicationHook(server, auto_keys);
    }
    return true;
  }

  bool RemoveNode(const std::string& name) {
    std::shared_ptr<CacheTransport> departed;
    {
      std::unique_lock<std::shared_mutex> lock(mu_);
      if (!ring_.RemoveNode(name)) {
        return false;
      }
      auto it = nodes_.find(name);
      if (it != nodes_.end()) {
        departed = std::move(it->second);
        nodes_.erase(it);
      }
    }
    if (departed != nullptr && departed->local_server() != nullptr) {
      // Detach the auto-replication hook (if any): the departed server may outlive this
      // cluster, and its Deliver tail must not call back into a dead fleet.
      departed->local_server()->set_replication_hook(nullptr);
    }
    return true;
  }

  // Current membership epoch (bumped on every successful AddNode/RemoveNode).
  uint64_t epoch() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return ring_.epoch();
  }

  // --- hot-key replication ---
  // Replication factor R: each hot key lives on its primary plus R-1 distinct ring
  // successors (pushed by ReplicateHotKeys), and a lookup whose primary answers
  // kNodeUnavailable fails over to those successors. R=1 (default) disables both. Replica
  // reads stay consistent without any cross-node coordination because the invalidation bus
  // fans out to every node: a replica's copy is truncated by the same stream messages that
  // truncate the primary's, so the freshest version a replica holds is never staler than
  // what the bus has published — exactly the single-node guarantee.
  void set_replication(size_t r) { replication_.store(std::max<size_t>(r, 1), std::memory_order_relaxed); }
  size_t replication() const { return replication_.load(std::memory_order_relaxed); }

  // One replication round: each node drains its hot-key sketch and pushes the newest
  // still-valid version of its `max_keys_per_node` hottest keys to the R-1 other members of
  // each key's replica set (skipping itself). Pushes go through the normal Insert path on
  // the replica — admission may decline, a joining replica refuses, and insert-time history
  // replay truncates a copy the replica's stream position has already invalidated. Returns
  // the number of accepted pushes this round (also accumulated in replica_pushes()).
  // Normally driven in the background by EnableAutoReplication below; still callable
  // directly for benches that replicate between measurement rounds.
  size_t ReplicateHotKeys(size_t max_keys_per_node) {
    size_t pushes = 0;
    for (CacheServer* primary : Nodes()) {
      if (primary != nullptr) {
        pushes += ReplicateHotKeysFromNode(primary, max_keys_per_node);
      }
    }
    return pushes;
  }

  // One node's share of a replication round (see ReplicateHotKeys). This is the unit the
  // background cadence fires: CacheServer's Deliver tail calls it for its own node every
  // Options::replication_interval_messages deliveries, so replication rides the invalidation
  // traffic itself — a fleet under write load keeps its replicas warm with no driver loop.
  size_t ReplicateHotKeysFromNode(CacheServer* primary, size_t max_keys_per_node) {
    const size_t replication = replication_.load(std::memory_order_relaxed);
    if (replication < 2 || max_keys_per_node == 0) {
      return 0;
    }
    std::vector<InsertRequest> hot = primary->ExportHotKeys(max_keys_per_node);
    if (hot.empty()) {
      return 0;
    }
    // Resolve every key's replica set under one shared-lock hop; push with it released
    // (same discipline as Lookup: membership writes never wait behind cache work). The
    // shared_ptr copies keep each replica's transport alive across a concurrent RemoveNode.
    std::vector<std::pair<std::shared_ptr<CacheTransport>, const InsertRequest*>> dispatch;
    {
      std::shared_lock<std::shared_mutex> lock(mu_);
      for (const InsertRequest& req : hot) {
        for (const std::string& name : ring_.ReplicasForHash(req.key_hash, replication)) {
          if (name == primary->name()) {
            continue;  // the exporter already holds it
          }
          auto it = nodes_.find(name);
          if (it != nodes_.end()) {
            dispatch.emplace_back(it->second, &req);
          }
        }
      }
    }
    size_t pushes = 0;
    for (auto& [replica, req] : dispatch) {
      if (replica->Insert(*req, nullptr).ok()) {
        ++pushes;
      }
    }
    replica_pushes_.fetch_add(pushes, std::memory_order_relaxed);
    return pushes;
  }

  // Turns on background replication: every current node (and every node added later) gets a
  // Deliver-tail hook that pushes its own hot keys to its ring replicas, paced by the node's
  // Options::replication_interval_messages. The cluster must outlive the servers' delivery
  // traffic (or nodes must be RemoveNode'd first — that detaches the hook). Pass 0 to turn
  // the background cadence off again.
  void EnableAutoReplication(size_t max_keys_per_node) {
    std::vector<CacheServer*> nodes;
    {
      std::unique_lock<std::shared_mutex> lock(mu_);
      auto_replication_keys_ = max_keys_per_node;
      nodes.reserve(nodes_.size());
      for (const auto& [_, transport] : nodes_) {
        if (transport->local_server() != nullptr) {
          nodes.push_back(transport->local_server());
        }
      }
    }
    for (CacheServer* server : nodes) {
      if (max_keys_per_node == 0) {
        server->set_replication_hook(nullptr);
      } else {
        AttachReplicationHook(server, max_keys_per_node);
      }
    }
  }

  // Lookups answered by a replica after the primary answered kNodeUnavailable.
  uint64_t replica_redirects() const {
    return replica_redirects_.load(std::memory_order_relaxed);
  }
  // Accepted hot-key pushes across all ReplicateHotKeys rounds.
  uint64_t replica_pushes() const { return replica_pushes_.load(std::memory_order_relaxed); }

  // Routes a key to its owning node's in-process server (nullptr-free: an unroutable key or
  // a fully remote node without a local server object is kUnavailable, never kInternal —
  // under churn that key is a miss, not a bug).
  Result<CacheServer*> NodeForKey(const std::string& key) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto node_or = NodeForHashLocked(Fnv1a(key));
    if (!node_or.ok()) {
      return node_or.status();
    }
    CacheServer* server = node_or.value()->local_server();
    if (server == nullptr) {
      return Status::Unavailable("node has no in-process server");
    }
    return server;
  }

  // Single lookup through cluster routing. An unroutable key answers a kNodeUnavailable miss
  // (a down/joining owner answers the same itself). The response carries the membership
  // epoch the routing decision was made at. The shared lock covers only the routing
  // decision, never the server call: the lock-striped shards stay the unit of contention,
  // and membership writes never wait behind slow cache work. A server resolved just before
  // its RemoveNode is still safe to call — servers are caller-owned and outlive the cluster,
  // so the request simply completes under the routing view it was issued at (its epoch).
  LookupResponse Lookup(const LookupRequest& req) const {
    std::shared_ptr<CacheTransport> node;
    uint64_t epoch = 0;
    {
      std::shared_lock<std::shared_mutex> lock(mu_);
      epoch = ring_.epoch();
      // Hash-once: the client's carried key hash routes the ring here and the shard probe
      // below; the key is never rehashed.
      auto node_or = NodeForHashLocked(RequestKeyHash(req));
      if (node_or.ok()) {
        node = node_or.value();
      }
    }
    LookupResponse resp;
    if (node == nullptr) {
      resp.miss = MissKind::kNodeUnavailable;
      nodes_unavailable_.fetch_add(1, std::memory_order_relaxed);
    } else {
      resp = node->Lookup(req);
      resp.served_by = node->name();
    }
    resp.ring_epoch = epoch;
    if (resp.miss == MissKind::kNodeUnavailable) {
      // Primary down/joining/departed: a hot key replicated to the ring successors can still
      // be served warm (a flash crowd must not turn into a miss storm because one node died).
      TryReplicaFailover(req, &resp);
    }
    return resp;
  }

  // Stores one fill on the owning node. kUnavailable (unroutable key, down/joining owner)
  // means the fill is simply not cached; kDeclined / kDeclinedTooLarge are the admission
  // gate's policy outcomes. The response carries the owning node's fresh advisory snapshot
  // for the function (accepts and declines alike).
  InsertResponse Insert(const InsertRequest& req) const {
    std::shared_ptr<CacheTransport> node;
    Status route = Status::Ok();
    InsertResponse resp;
    {
      std::shared_lock<std::shared_mutex> lock(mu_);
      resp.ring_epoch = ring_.epoch();
      auto node_or = NodeForHashLocked(RequestKeyHash(req));
      if (node_or.ok()) {
        node = node_or.value();
      } else {
        route = node_or.status();
      }
    }
    resp.status = node != nullptr ? node->Insert(req, &resp.hints) : route;
    if (node != nullptr) {
      resp.served_by = node->name();
    }
    return resp;
  }

  // --- write intents (optimistic read-write transactions) ---
  // Routes a write-intent acquire/release to the key's owning node; same route-then-dispatch
  // discipline (and epoch stamp) as Lookup. An unroutable key or a down/joining owner answers
  // kUnavailable, which callers treat as vacuous success: a node serving no reads protects
  // nothing, and its intents were dropped wholesale anyway (see CacheServer::Crash/Join).
  // Intents deliberately do NOT fail over to replicas — the intent guards the PRIMARY's
  // copy, the one an in-transaction reader would hit; replicas learn of the write from the
  // invalidation stream like everyone else.
  IntentResponse AcquireIntent(const IntentRequest& req) const {
    return RouteIntent(req, /*acquire=*/true);
  }
  IntentResponse ReleaseIntent(const IntentRequest& req) const {
    return RouteIntent(req, /*acquire=*/false);
  }

  // Batched lookups across the fleet: groups the batch per owning node (consistent hashing on
  // each key), issues one MultiLookup per node touched, and reassembles responses in request
  // order — one round-trip per node instead of one per key. A position whose owner departed
  // mid-batch degrades to a kNodeUnavailable miss at its request-order slot; only an entirely
  // empty ring fails the call.
  Result<MultiLookupResponse> MultiLookup(const MultiLookupRequest& req) const {
    MultiLookupResponse resp;
    resp.responses.resize(req.lookups.size());
    // Route the whole batch under the shared lock, then dispatch to the owning nodes with
    // the lock released (see Lookup above for why that is safe). Over the socket transport
    // each dispatch is ONE pipelined MultiLookup frame per node — the batch still costs one
    // round-trip per node touched, not one per key.
    std::vector<std::pair<std::shared_ptr<CacheTransport>, std::vector<uint32_t>>> dispatch;
    {
      std::shared_lock<std::shared_mutex> lock(mu_);
      resp.ring_epoch = ring_.epoch();
      // Hash-once batch routing: reuse each entry's carried key hash for the whole ring pass.
      std::vector<uint64_t> hashes;
      hashes.reserve(req.lookups.size());
      for (const LookupRequest& lookup : req.lookups) {
        hashes.push_back(RequestKeyHash(lookup));
      }
      auto groups_or = ring_.GroupByNode(hashes);
      if (!groups_or.ok()) {
        return groups_or.status();  // empty ring: the whole fleet is gone
      }
      dispatch.reserve(groups_or.value().size());
      for (auto& [name, indices] : groups_or.value()) {
        auto it = nodes_.find(name);
        if (it == nodes_.end()) {
          // The ring names a node with no live server (departed under our feet): those
          // positions become misses with correct request-order reassembly, never an error.
          for (uint32_t i : indices) {
            resp.responses[i].miss = MissKind::kNodeUnavailable;
          }
          nodes_unavailable_.fetch_add(indices.size(), std::memory_order_relaxed);
          continue;
        }
        dispatch.emplace_back(it->second, std::move(indices));
      }
    }
    for (auto& [node, indices] : dispatch) {
      // Scatter form: each node answers its positions straight into the shared response.
      node->MultiLookup(req, indices, &resp);
      for (uint32_t i : indices) {
        resp.responses[i].served_by = node->name();
      }
    }
    if (replication_.load(std::memory_order_relaxed) > 1) {
      // Per-position replica failover, same contract as Lookup. Only unavailable positions
      // pay the extra routing hop, so the warm path stays one round-trip per node.
      for (uint32_t i = 0; i < resp.responses.size(); ++i) {
        if (resp.responses[i].miss == MissKind::kNodeUnavailable) {
          TryReplicaFailover(req.lookups[i], &resp.responses[i]);
        }
      }
    }
    return resp;
  }

  size_t node_count() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return nodes_.size();
  }

  // In-process server objects of the fleet (management plane). Fully remote nodes (no local
  // server) are skipped.
  std::vector<CacheServer*> Nodes() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    std::vector<CacheServer*> out;
    out.reserve(nodes_.size());
    for (const auto& [_, transport] : nodes_) {
      if (transport->local_server() != nullptr) {
        out.push_back(transport->local_server());
      }
    }
    return out;
  }

  // The fleet's transports (one per node, whatever their kind).
  std::vector<std::shared_ptr<CacheTransport>> Transports() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    std::vector<std::shared_ptr<CacheTransport>> out;
    out.reserve(nodes_.size());
    for (const auto& [_, transport] : nodes_) {
      out.push_back(transport);
    }
    return out;
  }

  CacheStats TotalStats() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    CacheStats total;
    for (const auto& [_, transport] : nodes_) {
      if (transport->local_server() != nullptr) {
        total += transport->local_server()->stats();
      }
    }
    // Routing failures the cluster answered itself (no server to charge them to). They count
    // as lookups too, so fleet hit_rate() reflects the traffic churn turned away.
    const uint64_t unroutable = nodes_unavailable_.load(std::memory_order_relaxed);
    total.lookups += unroutable;
    total.nodes_unavailable += unroutable;
    return total;
  }

  // Fleet-wide per-function cost/benefit profiles: each function's fills/hits/rejects summed
  // across the nodes that own its keys, with the EWMA benefit-per-byte averaged weighted by
  // fills. Sorted by function name.
  std::vector<FunctionStatsEntry> TotalFunctionStats() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    std::unordered_map<std::string, FunctionStatsEntry> merged;
    for (const auto& [_, transport] : nodes_) {
      CacheServer* server = transport->local_server();
      if (server == nullptr) {
        continue;
      }
      for (FunctionStatsEntry& e : server->FunctionStats()) {
        auto it = merged.find(e.function);
        if (it == merged.end()) {
          merged.emplace(e.function, std::move(e));
          continue;
        }
        FunctionStatsEntry& m = it->second;
        const uint64_t total_fills = m.fills + e.fills;
        if (total_fills > 0) {
          m.ewma_benefit_per_byte =
              (m.ewma_benefit_per_byte * static_cast<double>(m.fills) +
               e.ewma_benefit_per_byte * static_cast<double>(e.fills)) /
              static_cast<double>(total_fills);
        }
        // Learned lifetimes merge weighted by the truncation counts that taught them.
        const uint64_t total_truncations = m.truncations + e.truncations;
        if (total_truncations > 0) {
          m.ewma_lifetime_us = (m.ewma_lifetime_us * static_cast<double>(m.truncations) +
                                e.ewma_lifetime_us * static_cast<double>(e.truncations)) /
                               static_cast<double>(total_truncations);
        }
        m.truncations = total_truncations;
        m.fills = total_fills;
        m.admission_rejects += e.admission_rejects;
        m.declined_too_large += e.declined_too_large;
        m.hits += e.hits;
        m.bytes_inserted += e.bytes_inserted;
        m.fill_cost_total_us += e.fill_cost_total_us;
      }
    }
    std::vector<FunctionStatsEntry> out;
    out.reserve(merged.size());
    for (auto& [_, e] : merged) {
      out.push_back(std::move(e));
    }
    std::sort(out.begin(), out.end(),
              [](const FunctionStatsEntry& a, const FunctionStatsEntry& b) {
                return a.function < b.function;
              });
    return out;
  }

  void FlushAll() {
    std::shared_lock<std::shared_mutex> lock(mu_);
    for (const auto& [_, transport] : nodes_) {
      if (transport->local_server() != nullptr) {
        transport->local_server()->Flush();
      }
    }
  }

  void ResetStatsAll() {
    std::shared_lock<std::shared_mutex> lock(mu_);
    for (const auto& [_, transport] : nodes_) {
      if (transport->local_server() != nullptr) {
        transport->local_server()->ResetStats();
      }
    }
    nodes_unavailable_.store(0, std::memory_order_relaxed);
  }

  size_t TotalBytesUsed() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    size_t n = 0;
    for (const auto& [_, transport] : nodes_) {
      if (transport->local_server() != nullptr) {
        n += transport->local_server()->bytes_used();
      }
    }
    return n;
  }

 private:
  IntentResponse RouteIntent(const IntentRequest& req, bool acquire) const {
    std::shared_ptr<CacheTransport> node;
    uint64_t epoch = 0;
    {
      std::shared_lock<std::shared_mutex> lock(mu_);
      epoch = ring_.epoch();
      auto node_or = NodeForHashLocked(RequestKeyHash(req));
      if (node_or.ok()) {
        node = node_or.value();
      }
    }
    IntentResponse resp;
    if (node == nullptr) {
      resp.status = Status::Unavailable("no cache node owns this key");
    } else {
      resp = acquire ? node->AcquireIntent(req) : node->ReleaseIntent(req);
      resp.served_by = node->name();
    }
    resp.ring_epoch = epoch;
    return resp;
  }

  // Installs the Deliver-tail hook on one server (see EnableAutoReplication). The hook
  // captures `this`; RemoveNode and EnableAutoReplication(0) detach it.
  void AttachReplicationHook(CacheServer* server, size_t max_keys_per_node) {
    server->set_replication_hook([this, max_keys_per_node](CacheServer* s) {
      ReplicateHotKeysFromNode(s, max_keys_per_node);
    });
  }

  // Replica failover for one position: try the key's ring successors (primary excluded) and
  // adopt the first answer that is not itself kNodeUnavailable — a hit for a replicated hot
  // key, an honest recomputable miss from a live node otherwise. Preserves the caller's
  // ring_epoch stamp. Returns true when a replica's answer was adopted.
  bool TryReplicaFailover(const LookupRequest& req, LookupResponse* resp) const {
    const size_t replication = replication_.load(std::memory_order_relaxed);
    if (replication < 2) {
      return false;
    }
    const uint64_t key_hash = RequestKeyHash(req);
    std::vector<std::shared_ptr<CacheTransport>> fallbacks;
    {
      std::shared_lock<std::shared_mutex> lock(mu_);
      auto primary_or = ring_.NodeForKey(key_hash);
      for (const std::string& name : ring_.ReplicasForHash(key_hash, replication)) {
        if (primary_or.ok() && name == primary_or.value()) {
          continue;  // that one already answered unavailable
        }
        auto it = nodes_.find(name);
        if (it != nodes_.end()) {
          fallbacks.push_back(it->second);
        }
      }
    }
    for (const std::shared_ptr<CacheTransport>& replica : fallbacks) {
      LookupResponse alt = replica->Lookup(req);
      if (alt.miss != MissKind::kNodeUnavailable) {
        alt.ring_epoch = resp->ring_epoch;
        alt.served_by = replica->name();
        *resp = std::move(alt);
        replica_redirects_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
    return false;
  }

  Result<std::shared_ptr<CacheTransport>> NodeForHashLocked(uint64_t key_hash) const {
    auto name_or = ring_.NodeForKey(key_hash);
    if (!name_or.ok()) {
      return name_or.status();
    }
    auto it = nodes_.find(name_or.value());
    if (it == nodes_.end()) {
      return Status::Unavailable("ring references a departed node");
    }
    return it->second;
  }

  // Guards ring_ and nodes_ against membership changes racing application traffic. Reads
  // (routing, stats) share; AddNode/RemoveNode are exclusive and brief.
  mutable std::shared_mutex mu_;
  ConsistentHashRing ring_;
  std::unordered_map<std::string, std::shared_ptr<CacheTransport>> nodes_;
  mutable std::atomic<uint64_t> nodes_unavailable_{0};

  // Hot-key replication factor and counters (see set_replication). replica_redirects_ is
  // mutable because failover happens on the const lookup path.
  std::atomic<size_t> replication_{1};
  mutable std::atomic<uint64_t> replica_redirects_{0};
  std::atomic<uint64_t> replica_pushes_{0};
  // Background replication budget per node per round; nonzero iff EnableAutoReplication is on
  // (guarded by mu_ so AddNode reads a consistent value).
  size_t auto_replication_keys_ = 0;
};

}  // namespace txcache

#endif  // SRC_CACHE_CACHE_CLUSTER_H_
