// A fleet of cache servers addressed through consistent hashing (paper §4): every application
// node holds the full node list and maps keys directly to the owning server.
//
// Membership is dynamic (docs/architecture.md §"Membership and recovery"): AddNode/RemoveNode
// may race with lookups from application threads, so the ring and server map live behind a
// shared mutex, and every successful change bumps the ring's membership epoch. Cluster-level
// Lookup/Insert/MultiLookup stamp that epoch on their responses so clients can detect stale
// routing and refresh it. Churn is never an error: a key whose owner is departed or unroutable
// degrades to a kNodeUnavailable miss (counted in CacheStats::nodes_unavailable), and a down
// or joining node answers its own positions as misses — the caller recomputes, exactly as the
// paper's "a vanished node is just misses" failure model prescribes.
#ifndef SRC_CACHE_CACHE_CLUSTER_H_
#define SRC_CACHE_CACHE_CLUSTER_H_

#include <algorithm>
#include <atomic>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/cache/cache_server.h"
#include "src/cluster/consistent_hash.h"
#include "src/util/hash.h"

namespace txcache {

class CacheCluster {
 public:
  explicit CacheCluster(size_t virtual_nodes_per_node = 64) : ring_(virtual_nodes_per_node) {}

  // The cluster does not own servers; callers keep them alive.
  bool AddNode(CacheServer* server) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    if (!ring_.AddNode(server->name())) {
      return false;
    }
    servers_[server->name()] = server;
    return true;
  }

  bool RemoveNode(const std::string& name) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    if (!ring_.RemoveNode(name)) {
      return false;
    }
    servers_.erase(name);
    return true;
  }

  // Current membership epoch (bumped on every successful AddNode/RemoveNode).
  uint64_t epoch() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return ring_.epoch();
  }

  // Routes a key to its owning server. Unroutable (empty ring, or — defensively — a ring
  // entry with no registered server) is kUnavailable, never kInternal: under churn that key
  // is a miss, not a bug.
  Result<CacheServer*> NodeForKey(const std::string& key) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return NodeForHashLocked(Fnv1a(key));
  }

  // Single lookup through cluster routing. An unroutable key answers a kNodeUnavailable miss
  // (a down/joining owner answers the same itself). The response carries the membership
  // epoch the routing decision was made at. The shared lock covers only the routing
  // decision, never the server call: the lock-striped shards stay the unit of contention,
  // and membership writes never wait behind slow cache work. A server resolved just before
  // its RemoveNode is still safe to call — servers are caller-owned and outlive the cluster,
  // so the request simply completes under the routing view it was issued at (its epoch).
  LookupResponse Lookup(const LookupRequest& req) const {
    CacheServer* server = nullptr;
    uint64_t epoch = 0;
    {
      std::shared_lock<std::shared_mutex> lock(mu_);
      epoch = ring_.epoch();
      // Hash-once: the client's carried key hash routes the ring here and the shard probe
      // below; the key is never rehashed.
      auto node_or = NodeForHashLocked(RequestKeyHash(req));
      if (node_or.ok()) {
        server = node_or.value();
      }
    }
    LookupResponse resp;
    if (server == nullptr) {
      resp.miss = MissKind::kNodeUnavailable;
      nodes_unavailable_.fetch_add(1, std::memory_order_relaxed);
    } else {
      resp = server->Lookup(req);
    }
    resp.ring_epoch = epoch;
    return resp;
  }

  // Stores one fill on the owning node. kUnavailable (unroutable key, down/joining owner)
  // means the fill is simply not cached; kDeclined / kDeclinedTooLarge are the admission
  // gate's policy outcomes. The response carries the owning node's fresh advisory snapshot
  // for the function (accepts and declines alike).
  InsertResponse Insert(const InsertRequest& req) const {
    CacheServer* server = nullptr;
    Status route = Status::Ok();
    InsertResponse resp;
    {
      std::shared_lock<std::shared_mutex> lock(mu_);
      resp.ring_epoch = ring_.epoch();
      auto node_or = NodeForHashLocked(RequestKeyHash(req));
      if (node_or.ok()) {
        server = node_or.value();
      } else {
        route = node_or.status();
      }
    }
    resp.status = server != nullptr ? server->Insert(req, &resp.hints) : route;
    return resp;
  }

  // Batched lookups across the fleet: groups the batch per owning node (consistent hashing on
  // each key), issues one MultiLookup per node touched, and reassembles responses in request
  // order — one round-trip per node instead of one per key. A position whose owner departed
  // mid-batch degrades to a kNodeUnavailable miss at its request-order slot; only an entirely
  // empty ring fails the call.
  Result<MultiLookupResponse> MultiLookup(const MultiLookupRequest& req) const {
    MultiLookupResponse resp;
    resp.responses.resize(req.lookups.size());
    // Route the whole batch under the shared lock, then dispatch to the owning servers with
    // the lock released (see Lookup above for why that is safe).
    std::vector<std::pair<CacheServer*, std::vector<uint32_t>>> dispatch;
    {
      std::shared_lock<std::shared_mutex> lock(mu_);
      resp.ring_epoch = ring_.epoch();
      // Hash-once batch routing: reuse each entry's carried key hash for the whole ring pass.
      std::vector<uint64_t> hashes;
      hashes.reserve(req.lookups.size());
      for (const LookupRequest& lookup : req.lookups) {
        hashes.push_back(RequestKeyHash(lookup));
      }
      auto groups_or = ring_.GroupByNode(hashes);
      if (!groups_or.ok()) {
        return groups_or.status();  // empty ring: the whole fleet is gone
      }
      dispatch.reserve(groups_or.value().size());
      for (auto& [name, indices] : groups_or.value()) {
        auto it = servers_.find(name);
        if (it == servers_.end()) {
          // The ring names a node with no live server (departed under our feet): those
          // positions become misses with correct request-order reassembly, never an error.
          for (uint32_t i : indices) {
            resp.responses[i].miss = MissKind::kNodeUnavailable;
          }
          nodes_unavailable_.fetch_add(indices.size(), std::memory_order_relaxed);
          continue;
        }
        dispatch.emplace_back(it->second, std::move(indices));
      }
    }
    for (auto& [server, indices] : dispatch) {
      // Scatter form: each node answers its positions straight into the shared response.
      server->MultiLookup(req, indices, &resp);
    }
    return resp;
  }

  size_t node_count() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return servers_.size();
  }

  std::vector<CacheServer*> Nodes() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    std::vector<CacheServer*> out;
    out.reserve(servers_.size());
    for (const auto& [_, server] : servers_) {
      out.push_back(server);
    }
    return out;
  }

  CacheStats TotalStats() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    CacheStats total;
    for (const auto& [_, server] : servers_) {
      total += server->stats();
    }
    // Routing failures the cluster answered itself (no server to charge them to). They count
    // as lookups too, so fleet hit_rate() reflects the traffic churn turned away.
    const uint64_t unroutable = nodes_unavailable_.load(std::memory_order_relaxed);
    total.lookups += unroutable;
    total.nodes_unavailable += unroutable;
    return total;
  }

  // Fleet-wide per-function cost/benefit profiles: each function's fills/hits/rejects summed
  // across the nodes that own its keys, with the EWMA benefit-per-byte averaged weighted by
  // fills. Sorted by function name.
  std::vector<FunctionStatsEntry> TotalFunctionStats() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    std::unordered_map<std::string, FunctionStatsEntry> merged;
    for (const auto& [_, server] : servers_) {
      for (FunctionStatsEntry& e : server->FunctionStats()) {
        auto it = merged.find(e.function);
        if (it == merged.end()) {
          merged.emplace(e.function, std::move(e));
          continue;
        }
        FunctionStatsEntry& m = it->second;
        const uint64_t total_fills = m.fills + e.fills;
        if (total_fills > 0) {
          m.ewma_benefit_per_byte =
              (m.ewma_benefit_per_byte * static_cast<double>(m.fills) +
               e.ewma_benefit_per_byte * static_cast<double>(e.fills)) /
              static_cast<double>(total_fills);
        }
        // Learned lifetimes merge weighted by the truncation counts that taught them.
        const uint64_t total_truncations = m.truncations + e.truncations;
        if (total_truncations > 0) {
          m.ewma_lifetime_us = (m.ewma_lifetime_us * static_cast<double>(m.truncations) +
                                e.ewma_lifetime_us * static_cast<double>(e.truncations)) /
                               static_cast<double>(total_truncations);
        }
        m.truncations = total_truncations;
        m.fills = total_fills;
        m.admission_rejects += e.admission_rejects;
        m.declined_too_large += e.declined_too_large;
        m.hits += e.hits;
        m.bytes_inserted += e.bytes_inserted;
        m.fill_cost_total_us += e.fill_cost_total_us;
      }
    }
    std::vector<FunctionStatsEntry> out;
    out.reserve(merged.size());
    for (auto& [_, e] : merged) {
      out.push_back(std::move(e));
    }
    std::sort(out.begin(), out.end(),
              [](const FunctionStatsEntry& a, const FunctionStatsEntry& b) {
                return a.function < b.function;
              });
    return out;
  }

  void FlushAll() {
    std::shared_lock<std::shared_mutex> lock(mu_);
    for (const auto& [_, server] : servers_) {
      server->Flush();
    }
  }

  void ResetStatsAll() {
    std::shared_lock<std::shared_mutex> lock(mu_);
    for (const auto& [_, server] : servers_) {
      server->ResetStats();
    }
    nodes_unavailable_.store(0, std::memory_order_relaxed);
  }

  size_t TotalBytesUsed() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    size_t n = 0;
    for (const auto& [_, server] : servers_) {
      n += server->bytes_used();
    }
    return n;
  }

 private:
  Result<CacheServer*> NodeForHashLocked(uint64_t key_hash) const {
    auto name_or = ring_.NodeForKey(key_hash);
    if (!name_or.ok()) {
      return name_or.status();
    }
    auto it = servers_.find(name_or.value());
    if (it == servers_.end()) {
      return Status::Unavailable("ring references a departed node");
    }
    return it->second;
  }

  // Guards ring_ and servers_ against membership changes racing application traffic. Reads
  // (routing, stats) share; AddNode/RemoveNode are exclusive and brief.
  mutable std::shared_mutex mu_;
  ConsistentHashRing ring_;
  std::unordered_map<std::string, CacheServer*> servers_;
  mutable std::atomic<uint64_t> nodes_unavailable_{0};
};

}  // namespace txcache

#endif  // SRC_CACHE_CACHE_CLUSTER_H_
