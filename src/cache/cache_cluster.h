// A fleet of cache servers addressed through consistent hashing (paper §4): every application
// node holds the full node list and maps keys directly to the owning server.
#ifndef SRC_CACHE_CACHE_CLUSTER_H_
#define SRC_CACHE_CACHE_CLUSTER_H_

#include <algorithm>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/cache/cache_server.h"
#include "src/cluster/consistent_hash.h"

namespace txcache {

class CacheCluster {
 public:
  explicit CacheCluster(size_t virtual_nodes_per_node = 64) : ring_(virtual_nodes_per_node) {}

  // The cluster does not own servers; callers keep them alive.
  bool AddNode(CacheServer* server) {
    if (!ring_.AddNode(server->name())) {
      return false;
    }
    servers_[server->name()] = server;
    return true;
  }

  bool RemoveNode(const std::string& name) {
    if (!ring_.RemoveNode(name)) {
      return false;
    }
    servers_.erase(name);
    return true;
  }

  Result<CacheServer*> NodeForKey(const std::string& key) const {
    auto name_or = ring_.NodeForKey(key);
    if (!name_or.ok()) {
      return name_or.status();
    }
    auto it = servers_.find(name_or.value());
    if (it == servers_.end()) {
      return Status::Internal("ring references unknown node");
    }
    return it->second;
  }

  // Batched lookups across the fleet: groups the batch per owning node (consistent hashing on
  // each key), issues one MultiLookup per node touched, and reassembles responses in request
  // order — one round-trip per node instead of one per key.
  Result<MultiLookupResponse> MultiLookup(const MultiLookupRequest& req) const {
    MultiLookupResponse resp;
    resp.responses.resize(req.lookups.size());
    std::vector<std::string_view> keys;
    keys.reserve(req.lookups.size());
    for (const LookupRequest& lookup : req.lookups) {
      keys.push_back(lookup.key);
    }
    auto groups_or = ring_.GroupByNode(keys);
    if (!groups_or.ok()) {
      return groups_or.status();
    }
    for (auto& [name, indices] : groups_or.value()) {
      auto it = servers_.find(name);
      if (it == servers_.end()) {
        return Status::Internal("ring references unknown node");
      }
      // Scatter form: each node answers its positions straight into the shared response.
      it->second->MultiLookup(req, indices, &resp);
    }
    return resp;
  }

  size_t node_count() const { return servers_.size(); }

  std::vector<CacheServer*> Nodes() const {
    std::vector<CacheServer*> out;
    out.reserve(servers_.size());
    for (const auto& [_, server] : servers_) {
      out.push_back(server);
    }
    return out;
  }

  CacheStats TotalStats() const {
    CacheStats total;
    for (const auto& [_, server] : servers_) {
      total += server->stats();
    }
    return total;
  }

  // Fleet-wide per-function cost/benefit profiles: each function's fills/hits/rejects summed
  // across the nodes that own its keys, with the EWMA benefit-per-byte averaged weighted by
  // fills. Sorted by function name.
  std::vector<FunctionStatsEntry> TotalFunctionStats() const {
    std::unordered_map<std::string, FunctionStatsEntry> merged;
    for (const auto& [_, server] : servers_) {
      for (FunctionStatsEntry& e : server->FunctionStats()) {
        auto it = merged.find(e.function);
        if (it == merged.end()) {
          merged.emplace(e.function, std::move(e));
          continue;
        }
        FunctionStatsEntry& m = it->second;
        const uint64_t total_fills = m.fills + e.fills;
        if (total_fills > 0) {
          m.ewma_benefit_per_byte =
              (m.ewma_benefit_per_byte * static_cast<double>(m.fills) +
               e.ewma_benefit_per_byte * static_cast<double>(e.fills)) /
              static_cast<double>(total_fills);
        }
        m.fills = total_fills;
        m.admission_rejects += e.admission_rejects;
        m.hits += e.hits;
        m.bytes_inserted += e.bytes_inserted;
        m.fill_cost_total_us += e.fill_cost_total_us;
      }
    }
    std::vector<FunctionStatsEntry> out;
    out.reserve(merged.size());
    for (auto& [_, e] : merged) {
      out.push_back(std::move(e));
    }
    std::sort(out.begin(), out.end(),
              [](const FunctionStatsEntry& a, const FunctionStatsEntry& b) {
                return a.function < b.function;
              });
    return out;
  }

  void FlushAll() {
    for (const auto& [_, server] : servers_) {
      server->Flush();
    }
  }

  void ResetStatsAll() {
    for (const auto& [_, server] : servers_) {
      server->ResetStats();
    }
  }

  size_t TotalBytesUsed() const {
    size_t n = 0;
    for (const auto& [_, server] : servers_) {
      n += server->bytes_used();
    }
    return n;
  }

 private:
  ConsistentHashRing ring_;
  std::unordered_map<std::string, CacheServer*> servers_;
};

}  // namespace txcache

#endif  // SRC_CACHE_CACHE_CLUSTER_H_
