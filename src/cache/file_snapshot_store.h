// File-backed SnapshotStore: warm rejoins that survive a process restart.
//
// The in-memory store dies with the process, so it only warms SIMULATED crashes. This store
// writes each node's snapshot to `<dir>/<node>.snap` with the durability idiom real caches
// use:
//
//   * Atomic replace — Save writes to `<node>.snap.tmp` and rename(2)s over the final path,
//     so a crash mid-write leaves either the previous complete snapshot or a stray .tmp,
//     never a torn .snap.
//   * Validated load — the file carries a magic, a format version, the payload length and an
//     FNV-1a checksum. LoadFreshest verifies all four and answers nullopt for anything
//     short, truncated, corrupt or from a different format — a damaged snapshot degrades to
//     the cold-join path (ImportSnapshot then re-validates entry-by-entry on top).
//
// Node names become file names via a conservative sanitizer (alnum, '-', '_', '.' pass;
// everything else maps to '_'), so ring names like "node:0" can't escape the directory.
#ifndef SRC_CACHE_FILE_SNAPSHOT_STORE_H_
#define SRC_CACHE_FILE_SNAPSHOT_STORE_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

#include "src/cache/snapshot_store.h"

namespace txcache {

class FileSnapshotStore : public SnapshotStore {
 public:
  // `dir` is created (one level) if missing. Failures to create it are remembered and every
  // Save becomes a counted no-op — persistence is an optimization, never an outage.
  explicit FileSnapshotStore(std::string dir);

  void Save(const std::string& node, std::string snapshot) override;
  std::optional<std::string> LoadFreshest(const std::string& node) const override;

  // Removes `node`'s snapshot file (tests: force the no-snapshot fallback).
  void Erase(const std::string& node);

  const std::string& dir() const { return dir_; }
  uint64_t saves() const { return saves_.load(std::memory_order_relaxed); }
  uint64_t save_failures() const { return save_failures_.load(std::memory_order_relaxed); }
  uint64_t loads() const { return loads_.load(std::memory_order_relaxed); }
  // Loads that found a file but rejected it (bad magic/version/length/checksum).
  uint64_t corrupt_rejects() const { return corrupt_rejects_.load(std::memory_order_relaxed); }

  // Path `node`'s snapshot lives at (exposed so tests can corrupt it deliberately).
  std::string PathFor(const std::string& node) const;

 private:
  const std::string dir_;
  bool dir_ok_ = false;
  std::atomic<uint64_t> saves_{0};
  std::atomic<uint64_t> save_failures_{0};
  mutable std::atomic<uint64_t> loads_{0};
  mutable std::atomic<uint64_t> corrupt_rejects_{0};
};

}  // namespace txcache

#endif  // SRC_CACHE_FILE_SNAPSHOT_STORE_H_
