// The versioned cache server (paper §4) — a thin frontend over lock-striped shards.
//
// Each key maps to a chain of versions with pairwise-disjoint validity intervals. A version
// whose interval is unbounded is "still valid": it is registered in the tag index and will be
// truncated when a matching invalidation-stream message arrives. Lookups carry a timestamp
// range (the caller's pin-set bounds) and return the most recent version whose interval
// intersects it.
//
// Node-internal architecture (see docs/architecture.md): keys are partitioned over
// Options::num_shards CacheShards by hash(key) % N; each shard owns its version chains, tag
// index, LRU slice, invalidation history and stats behind its own mutex, so operations on
// different shards never contend. The invalidation stream is sequenced once per node by a
// StreamSequencer (duplicates dropped, gaps held in a reorder buffer) and fanned out to every
// shard in strict seqno order, preserving the §4.2 ordering and insert/invalidate-race
// guarantees per shard. Eviction is node-global: shards share an atomic byte counter and a
// monotone touch tick, and the frontend evicts the globally least-recently-used version, so
// capacity behavior matches the old single-mutex server.
//
// MultiLookup answers a batch of lookups in one call, grouping the batch per shard and taking
// each shard lock once; responses are positionally aligned with the request and byte-identical
// to issuing the lookups one at a time.
//
// Membership lifecycle (docs/architecture.md §"Membership and recovery"): a node is kServing,
// kJoining, or kDown. Crash() models a failure or partition — the node answers every request
// with a kNodeUnavailable miss and loses stream deliveries. Join() is the rejoin barrier: the
// node re-subscribes, reads the stream's current position as its join target, and either
// catch-up-replays the missed messages from the bus's bounded history (cached data survives,
// properly truncated) or — when the history no longer reaches back — flushes everything and
// adopts the live position (raising the shards' history floor so late inserts computed inside
// the gap are conservatively truncated). It serves only once its sequencer reaches the join
// target, so a rejoined node can never answer with state that missed an invalidation.
#ifndef SRC_CACHE_CACHE_SERVER_H_
#define SRC_CACHE_CACHE_SERVER_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/bus/bus.h"
#include "src/bus/sequencer.h"
#include "src/cache/cache_shard.h"
#include "src/cache/cache_types.h"
#include "src/cache/snapshot_store.h"
#include "src/util/clock.h"
#include "src/util/status.h"

namespace txcache {

// Lifecycle of a cache node under dynamic membership. A freshly constructed server is
// kServing (fixed-membership deployments never touch the state machine).
enum class NodeState : uint8_t {
  kServing,  // caught up with the invalidation stream; answering normally
  kJoining,  // join barrier: catching up; every request answers kNodeUnavailable
  kDown,     // crashed/partitioned: requests answer kNodeUnavailable, deliveries are lost
};

class CacheServer : public InvalidationSubscriber {
 public:
  using Options = CacheOptions;

  CacheServer(std::string name, const Clock* clock) : CacheServer(std::move(name), clock, Options{}) {}
  CacheServer(std::string name, const Clock* clock, Options options);
  ~CacheServer() override;

  CacheServer(const CacheServer&) = delete;
  CacheServer& operator=(const CacheServer&) = delete;

  LookupResponse Lookup(const LookupRequest& req);
  // Batched lookups: one shard-lock acquisition per shard touched. responses[i] answers
  // lookups[i].
  MultiLookupResponse MultiLookup(const MultiLookupRequest& req);
  // Scatter form used by cluster routing: answers only req.lookups[i] for i in `indices`,
  // writing each result to out->responses[i] (which must be pre-sized). Avoids copying
  // sub-batches on the hot path.
  void MultiLookup(const MultiLookupRequest& req, const std::vector<uint32_t>& indices,
                   MultiLookupResponse* out);
  // Stores one filled result. Under the cost-aware policy an insert may be refused by the
  // admission gate: kDeclined when the owning function's observed benefit-per-byte sits below
  // the adaptive watermark, kDeclinedTooLarge when the entry fails the size-aware gate (it
  // exceeds its shard's max_entry_fraction slice, or — at byte pressure, for fills >=
  // displacement_check_bytes — its benefit loses to the summed benefit of the victims its
  // bytes would displace). Both are policy outcomes, not errors. `hints_out`, when non-null,
  // receives the function's fresh advisory snapshot (accepts and declines alike).
  Status Insert(const InsertRequest& req) { return Insert(req, nullptr); }
  Status Insert(const InsertRequest& req, std::shared_ptr<const AdvisoryHints>* hints_out);

  // InvalidationSubscriber: called by the bus (possibly out of order in tests/simulation).
  // Messages are dropped while the node is kDown — a crashed process loses them, which is
  // exactly the gap Join() must close before the node may serve again.
  void Deliver(const InvalidationMessage& msg) override;

  // --- dynamic membership ---
  // Models a crash or partition: stop serving and stop consuming the stream. Cached data and
  // the stream position are deliberately kept — the worst case Join() must handle is a node
  // that comes back with pre-crash state (warm restart, healed partition).
  void Crash();
  // Rejoin barrier. Re-subscribes to the stream, records the current publish position as the
  // join target, then closes the gap between our sequencer position and the target: replay
  // the missed messages from the bus's bounded history if it still covers them (cached
  // entries survive, truncated exactly as live delivery would have). When replay fails, a
  // snapshot store (if attached) is tried first — restoring a snapshot ahead of our position
  // shrinks the gap to [snapshot seqno, target), which history usually still covers — and
  // only as a last resort is everything flushed and the live position adopted. The node
  // starts serving only once its sequencer reaches the join target — with the simulator's
  // delivery hook, replayed messages arrive with latency and the barrier stays up until
  // they do.
  Status Join(InvalidationBus* bus);
  NodeState state() const { return state_.load(std::memory_order_acquire); }
  bool serving() const { return state() == NodeState::kServing; }
  // Next invalidation seqno this node expects (its position in the stream).
  uint64_t stream_position() const { return sequencer_.next_expected_seqno(); }

  // Drops all cached data (not the stream position). Used between benchmark runs.
  void Flush();

  // Cache warm-up via snapshots (paper §8: "we ensured the cache was warm by restoring its
  // contents from a snapshot"). The snapshot serializes every resident version (values,
  // intervals, tags, computed_at) plus the stream position; importing replays each entry
  // through the normal Insert path so invalidation-history checks still apply.
  //
  // Caveat (pre-existing, inherited from the monolithic server): importing into a NON-empty
  // cache that lags the snapshot's stream position fast-forwards past messages this node
  // never applied — the importer's own pre-existing still-valid entries skip those
  // truncations, because the snapshot carries the exporter's data but not its replay
  // history. The §8 deployment pattern (restore into a fresh node before serving) is safe.
  std::string ExportSnapshot() const;
  Status ImportSnapshot(const std::string& snapshot);

  // --- warm rejoin (snapshot persistence) ---
  // Attaches a snapshot store. While serving, the node persists ExportSnapshot() under its
  // own name every Options::snapshot_interval_messages applied invalidations (plus on demand
  // via PersistSnapshot). On Join(), when catch-up replay fails, the freshest stored snapshot
  // — if it is AHEAD of our stream position, i.e. we are a cold restart with less state than
  // the store holds — is restored first, its stream position adopted, and only the residual
  // gap closed by replay (or, when history no longer covers even that, by administratively
  // closing the imported still-valid entries and raising the history floor). Either way the
  // node rejoins warm instead of flushing; CacheStats::join_snapshot_restores counts it.
  // The store must outlive the server; pass nullptr to detach.
  void set_snapshot_store(SnapshotStore* store) { snapshot_store_ = store; }
  // Exports and saves a snapshot now (no-op without a store or while not serving).
  void PersistSnapshot();

  // --- write intents (optimistic read-write transactions) ---
  // Check-and-acquire / release of the advisory per-key write intent (see IntentRequest).
  // Both are gated by the serving barrier: a node that is down or joining answers
  // kUnavailable, which callers treat as vacuous success — a node serving no reads protects
  // nothing. Intents never survive Crash(), Join() or Flush(): they are dropped wholesale
  // (CacheStats::intents_cleared), which is safe because serializability comes from the
  // database's commit-time read validation, not from the intents.
  IntentResponse AcquireIntent(const IntentRequest& req);
  IntentResponse ReleaseIntent(const IntentRequest& req);
  // Drops every intent on the node. Returns how many were held.
  size_t ClearIntents();

  // --- hot-key replication ---
  // Attaches the background replication hook, fired from the Deliver tail every
  // Options::replication_interval_messages applied deliveries (same shape as the
  // snapshot-persistence cadence, and like it the hook runs outside the sequencer's critical
  // section on one arbitrary delivering thread). CacheCluster::EnableAutoReplication installs
  // a hook that pushes this node's hot keys to its ring replicas. Pass nullptr to detach.
  // The hook must not call back into Deliver.
  void set_replication_hook(std::function<void(CacheServer*)> hook);
  // Drains the per-thread hot-key sketches and exports the newest still-valid version of the
  // `max_keys` hottest keys as replication-ready InsertRequests (key_hash carried, interval
  // re-opened, computed_at capped so a replica that lags this node's invalidation history
  // truncates conservatively at insert time). The sketch counters reset on harvest, so each
  // call reflects roughly the traffic since the previous one (a sliding window, not a
  // lifetime ranking). Ordering: hottest first.
  std::vector<InsertRequest> ExportHotKeys(size_t max_keys);

  const std::string& name() const { return name_; }
  // Node-wide tag-set dedup (diagnostic: distinct sets tracked, interns answered by an
  // already-live set). Safe under concurrent load.
  const TagSetInterner& tag_interner() const { return tag_interner_; }
  CacheStats stats() const;  // aggregated over shards; safe under concurrent load
  // Per-function cost/benefit profiles (fills, hits, rejects, EWMA benefit-per-byte), sorted
  // by function name; hits are merged from the shards' counters. Safe under concurrent load.
  std::vector<FunctionStatsEntry> FunctionStats() const;
  // Current GreedyDual aging floor: the highest benefit score evicted so far. The admission
  // watermark is a fraction of this. Zero until the first still-valid entry is evicted.
  double aging_floor() const { return aging_floor_.load(std::memory_order_relaxed); }
  // Lock-free total of capacity evictions (all policies). At rest it equals the shard-derived
  // CacheStats::capacity_evictions(); under load it is safe to poll without touching a shard.
  uint64_t capacity_eviction_count() const {
    return capacity_evictions_.load(std::memory_order_relaxed);
  }
  void ResetStats();
  size_t bytes_used() const;
  size_t version_count() const;
  size_t key_count() const;
  Timestamp last_invalidation_ts() const;

  size_t num_shards() const { return shards_.size(); }
  // Which shard a key (hash) routes to. Exposed for tests and for benchmarks that model
  // per-shard queueing. The hash form is the hot path: the carried Fnv1a key hash is reused,
  // never recomputed.
  size_t ShardIndexForHash(uint64_t key_hash) const;
  size_t ShardIndexForKey(const std::string& key) const;
  // Lifetime total of exclusive shard-lock acquisitions across the node. Tests assert the
  // read fast path's "a hit takes no exclusive lock" claim against this.
  uint64_t exclusive_lock_acquisitions() const;

 private:
  // Admission bookkeeping per function. `hits` lives shard-side; everything else here.
  struct FunctionProfile {
    uint64_t fills = 0;
    uint64_t rejects = 0;    // watermark triggers (a probe still counts as a trigger)
    uint64_t too_large = 0;  // size-aware declines (guard or lost displacement comparison)
    uint64_t bytes_inserted = 0;
    uint64_t fill_cost_total_us = 0;
    double ewma_benefit_per_byte = 0.0;
  };

  CacheShard* ShardForHash(uint64_t key_hash) const;
  // Applies one in-order message: fan out to every shard (strict order is guaranteed by the
  // sequencer serializing this sink).
  void ApplySequenced(const InvalidationMessage& msg);
  void SweepAllShards();
  // Capacity eviction until the node fits its byte budget. Under kLru: the globally
  // least-recently-used version (comparing shard LRU tails by touch tick). Under kCostAware:
  // stale (closed-interval) versions first in the order they went stale, then the still-valid
  // version with the globally lowest benefit-per-byte score; each eviction folds the victim's
  // realized benefit back into its function's admission profile.
  void EvictToFit();
  // Returns kDeclined / kDeclinedTooLarge when the admission gate refuses this fill; Ok to
  // proceed. `function` is CacheKeyFunction(req.key), parsed once by Insert and reused here
  // and shard-side. `*hints` receives the function's freshly published advisory snapshot.
  Status AdmitInsert(const InsertRequest& req, const std::string& function,
                     std::shared_ptr<const AdvisoryHints>* hints);
  // Summed remaining benefit (µs) of the victims the policy would evict to free
  // `bytes_needed`: every stale-listed victim is free; scored victims charge
  // max(0, score - aging floor) x bytes, cheapest first across all shards.
  double DisplacementCost(size_t bytes_needed) const;
  // Builds and publishes the function's advisory snapshot from its profile (fn_mu_ held).
  std::shared_ptr<const AdvisoryHints> PublishHintsLocked(const std::string& function,
                                                          const FunctionProfile& p);
  // Insert body shared by the public (serving-gated) Insert and ImportSnapshot, which must
  // bypass the gate: warm rejoin imports while the join barrier is still up.
  Status InsertImpl(const InsertRequest& req, std::shared_ptr<const AdvisoryHints>* hints_out);
  // Join()'s warm path: restore the freshest stored snapshot if it is ahead of `position`,
  // then close the residual gap up to `target` (replay, or degraded close + floor raise).
  // Returns true iff the node was restored (counted in join_snapshot_restores_); false means
  // the caller falls through to the cold flush path with node state untouched or re-flushed.
  bool TryRestoreFromSnapshot(InvalidationBus* bus, uint64_t target, uint64_t position);
  // True iff the node may answer requests. Promotes kJoining to kServing when the sequencer
  // has reached the join target (the barrier drops itself as catch-up completes).
  bool CheckServing();
  // Answers one refused lookup position: kNodeUnavailable miss, counted.
  void FillUnavailable(LookupResponse* resp);

  const std::string name_;
  const Clock* clock_;
  const Options options_;

  std::atomic<size_t> bytes_used_{0};     // shared with shards
  std::atomic<uint64_t> touch_ticker_{1};  // node-global LRU clock, shared with shards
  std::atomic<double> aging_floor_{0.0};   // shared GreedyDual aging value
  // Node-wide function-name interning: shards store dense uint32 ids on their versions and
  // resolve names only on cold paths. Declared before shards_ (they capture a pointer).
  FunctionInterner interner_;
  // Node-wide tag-set dedup: versions with identical invalidation-tag sets share one
  // allocation. Declared before shards_ (they capture a pointer).
  TagSetInterner tag_interner_;
  std::vector<std::unique_ptr<CacheShard>> shards_;
  StreamSequencer sequencer_;

  // Membership state. join_target_ is the stream position read at Join() time; serving is
  // allowed only once the sequencer catches up to it.
  std::atomic<NodeState> state_{NodeState::kServing};
  std::atomic<uint64_t> join_target_{0};
  std::atomic<uint64_t> unavailable_misses_{0};
  std::atomic<uint64_t> join_catchups_{0};
  std::atomic<uint64_t> join_flushes_{0};
  std::atomic<uint64_t> join_snapshot_restores_{0};

  // Warm-rejoin persistence: optional, not owned. messages_since_snapshot_ drives the
  // periodic PersistSnapshot cadence from Deliver.
  SnapshotStore* snapshot_store_ = nullptr;
  std::atomic<uint64_t> messages_since_snapshot_{0};

  // Background hot-key replication: the hook (usually installed by CacheCluster) fires from
  // the Deliver tail every replication_interval_messages deliveries. Guarded by a leaf mutex
  // (copied out before invocation, so the hook itself runs unlocked).
  mutable std::mutex replication_hook_mu_;
  std::function<void(CacheServer*)> replication_hook_;
  std::atomic<uint64_t> messages_since_replication_{0};

  // Eviction/admission counters are node-level atomics (not per-shard, mutex-guarded partials)
  // so stats() stays safe to call while the stress tests hammer Insert/EvictToFit.
  std::atomic<uint64_t> capacity_evictions_{0};
  std::atomic<uint64_t> eviction_bytes_reclaimed_{0};
  std::atomic<uint64_t> admission_rejects_{0};
  std::atomic<uint64_t> admission_probes_{0};
  std::atomic<uint64_t> admission_rejects_too_large_{0};

  mutable std::mutex fn_mu_;
  std::unordered_map<std::string, FunctionProfile> fn_profiles_;
  // Node-global TTL learning and advisory-hint snapshots, shared with the shards. Declared
  // after the profile map only for grouping; it guards itself with a leaf mutex (lock order:
  // fn_mu_ or a shard lock may be held when calling in, never the reverse).
  FunctionAdvisor advisor_;

  // Messages applied in order (counted once per message, not per shard).
  std::atomic<uint64_t> invalidation_messages_{0};
  // Set by the sequencer sink when a shard's op counter fires; the sweep itself runs in
  // Deliver, outside the sequencer's critical section.
  std::atomic<bool> sweep_pending_{false};
};

}  // namespace txcache

#endif  // SRC_CACHE_CACHE_SERVER_H_
