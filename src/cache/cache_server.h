// The versioned cache server (paper §4).
//
// Each key maps to a chain of versions with pairwise-disjoint validity intervals. A version
// whose interval is unbounded is "still valid": it is registered in the tag index and will be
// truncated when a matching invalidation-stream message arrives. Lookups carry a timestamp
// range (the caller's pin-set bounds) and return the most recent version whose interval
// intersects it.
//
// Invalidation stream: messages are applied strictly in sequence-number order; out-of-order
// deliveries wait in a reorder buffer. For still-valid entries, the effective upper bound at
// lookup time is the timestamp of the last applied invalidation, which closes the
// insert/invalidate race the paper describes (§4.2). A bounded history of recent invalidations
// per tag lets late inserts (value computed before an invalidation was applied) be truncated
// correctly at insert time.
//
// Eviction: least-recently-used across versions, plus eager eviction of versions whose
// invalidation happened longer ago than the maximum staleness any transaction could accept.
#ifndef SRC_CACHE_CACHE_SERVER_H_
#define SRC_CACHE_CACHE_SERVER_H_

#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/bus/bus.h"
#include "src/cache/cache_types.h"
#include "src/util/clock.h"
#include "src/util/status.h"

namespace txcache {

class CacheServer : public InvalidationSubscriber {
 public:
  struct Options {
    size_t capacity_bytes = 64 << 20;
    // Versions invalidated more than this long ago (wall clock) cannot satisfy any transaction
    // and are eagerly evicted. Matches the largest staleness limit the deployment uses.
    WallClock max_staleness = Seconds(120);
    // How many commit timestamps of per-tag invalidation history to retain for insert-time
    // replay. Inserts whose computed_at is older than the retained floor have their still-valid
    // claim truncated conservatively.
    Timestamp history_retention = 100'000;
    // Run the staleness sweep every this many mutating operations.
    uint64_t sweep_interval_ops = 2048;
  };

  CacheServer(std::string name, const Clock* clock) : CacheServer(std::move(name), clock, Options{}) {}
  CacheServer(std::string name, const Clock* clock, Options options);
  ~CacheServer() override;

  CacheServer(const CacheServer&) = delete;
  CacheServer& operator=(const CacheServer&) = delete;

  LookupResponse Lookup(const LookupRequest& req);
  Status Insert(const InsertRequest& req);

  // InvalidationSubscriber: called by the bus (possibly out of order in tests/simulation).
  void Deliver(const InvalidationMessage& msg) override;

  // Drops all cached data (not the stream position). Used between benchmark runs.
  void Flush();

  // Cache warm-up via snapshots (paper §8: "we ensured the cache was warm by restoring its
  // contents from a snapshot"). The snapshot serializes every resident version (values,
  // intervals, tags, computed_at) plus the stream position; importing replays each entry
  // through the normal Insert path so invalidation-history checks still apply.
  std::string ExportSnapshot() const;
  Status ImportSnapshot(const std::string& snapshot);

  const std::string& name() const { return name_; }
  CacheStats stats() const;
  void ResetStats();
  size_t bytes_used() const;
  size_t version_count() const;
  size_t key_count() const;
  Timestamp last_invalidation_ts() const;

 private:
  struct Version {
    Interval interval;                      // truncated in place by invalidations
    Timestamp known_valid_through = kTimestampZero;  // max(lower, computed_at)
    bool still_valid = false;
    std::string value;
    std::vector<InvalidationTag> tags;      // registered in tag index iff still_valid
    WallClock invalidated_wallclock = 0;    // set when truncated
    size_t bytes = 0;
    const std::string* key = nullptr;       // points at the map node's key (stable)
    std::list<Version*>::iterator lru_it;   // position in lru_
  };

  struct KeyEntry {
    // Sorted by interval.lower; intervals pairwise disjoint.
    std::vector<std::unique_ptr<Version>> versions;
    bool ever_inserted = false;
  };

  // All helpers assume mu_ is held.
  void ApplyLocked(const InvalidationMessage& msg);
  void TruncateLocked(Version* v, Timestamp ts, WallClock wallclock);
  void RegisterTagsLocked(Version* v);
  void UnregisterTagsLocked(Version* v);
  void RemoveVersionLocked(Version* v);
  void TouchLocked(Version* v);
  void EvictToFitLocked();
  void SweepStaleLocked();
  void RecordHistoryLocked(const InvalidationMessage& msg);
  // Earliest invalidation affecting `tags` with timestamp > after; kTimestampInfinity if none.
  Timestamp EarliestInvalidationAfterLocked(const std::vector<InvalidationTag>& tags,
                                            Timestamp after) const;
  Timestamp EffectiveUpperLocked(const Version& v) const;

  const std::string name_;
  const Clock* clock_;
  const Options options_;

  mutable std::mutex mu_;
  std::unordered_map<std::string, KeyEntry> map_;
  std::list<Version*> lru_;  // front = most recently used
  size_t bytes_used_ = 0;
  size_t version_count_ = 0;

  // Still-valid version registry: concrete tag -> versions carrying it; table -> versions
  // carrying any tag of that table (serves wildcard invalidation messages); table -> versions
  // holding a wildcard tag on that table (invalidated by any message touching the table).
  std::unordered_map<InvalidationTag, std::unordered_set<Version*>, TagHasher> tag_index_;
  std::unordered_map<std::string, std::unordered_set<Version*>> table_index_;
  std::unordered_map<std::string, std::unordered_set<Version*>> wildcard_holders_;

  // Invalidation stream state.
  uint64_t next_expected_seqno_ = 1;
  std::map<uint64_t, InvalidationMessage> reorder_buffer_;
  Timestamp last_invalidation_ts_ = kTimestampZero;

  // Recent invalidation history for insert-time replay: per concrete tag, per table (wildcard
  // messages), and per table (any message touching the table).
  std::unordered_map<InvalidationTag, std::vector<Timestamp>, TagHasher> tag_history_;
  std::unordered_map<std::string, std::vector<Timestamp>> table_wildcard_history_;
  std::unordered_map<std::string, std::vector<Timestamp>> table_any_history_;
  Timestamp history_floor_ = kTimestampZero;  // history below this has been pruned

  uint64_t ops_since_sweep_ = 0;
  CacheStats stats_;
};

}  // namespace txcache

#endif  // SRC_CACHE_CACHE_SERVER_H_
