// The versioned cache server (paper §4) — a thin frontend over lock-striped shards.
//
// Each key maps to a chain of versions with pairwise-disjoint validity intervals. A version
// whose interval is unbounded is "still valid": it is registered in the tag index and will be
// truncated when a matching invalidation-stream message arrives. Lookups carry a timestamp
// range (the caller's pin-set bounds) and return the most recent version whose interval
// intersects it.
//
// Node-internal architecture (see docs/architecture.md): keys are partitioned over
// Options::num_shards CacheShards by hash(key) % N; each shard owns its version chains, tag
// index, LRU slice, invalidation history and stats behind its own mutex, so operations on
// different shards never contend. The invalidation stream is sequenced once per node by a
// StreamSequencer (duplicates dropped, gaps held in a reorder buffer) and fanned out to every
// shard in strict seqno order, preserving the §4.2 ordering and insert/invalidate-race
// guarantees per shard. Eviction is node-global: shards share an atomic byte counter and a
// monotone touch tick, and the frontend evicts the globally least-recently-used version, so
// capacity behavior matches the old single-mutex server.
//
// MultiLookup answers a batch of lookups in one call, grouping the batch per shard and taking
// each shard lock once; responses are positionally aligned with the request and byte-identical
// to issuing the lookups one at a time.
#ifndef SRC_CACHE_CACHE_SERVER_H_
#define SRC_CACHE_CACHE_SERVER_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "src/bus/bus.h"
#include "src/bus/sequencer.h"
#include "src/cache/cache_shard.h"
#include "src/cache/cache_types.h"
#include "src/util/clock.h"
#include "src/util/status.h"

namespace txcache {

class CacheServer : public InvalidationSubscriber {
 public:
  using Options = CacheOptions;

  CacheServer(std::string name, const Clock* clock) : CacheServer(std::move(name), clock, Options{}) {}
  CacheServer(std::string name, const Clock* clock, Options options);
  ~CacheServer() override;

  CacheServer(const CacheServer&) = delete;
  CacheServer& operator=(const CacheServer&) = delete;

  LookupResponse Lookup(const LookupRequest& req);
  // Batched lookups: one shard-lock acquisition per shard touched. responses[i] answers
  // lookups[i].
  MultiLookupResponse MultiLookup(const MultiLookupRequest& req);
  // Scatter form used by cluster routing: answers only req.lookups[i] for i in `indices`,
  // writing each result to out->responses[i] (which must be pre-sized). Avoids copying
  // sub-batches on the hot path.
  void MultiLookup(const MultiLookupRequest& req, const std::vector<uint32_t>& indices,
                   MultiLookupResponse* out);
  Status Insert(const InsertRequest& req);

  // InvalidationSubscriber: called by the bus (possibly out of order in tests/simulation).
  void Deliver(const InvalidationMessage& msg) override;

  // Drops all cached data (not the stream position). Used between benchmark runs.
  void Flush();

  // Cache warm-up via snapshots (paper §8: "we ensured the cache was warm by restoring its
  // contents from a snapshot"). The snapshot serializes every resident version (values,
  // intervals, tags, computed_at) plus the stream position; importing replays each entry
  // through the normal Insert path so invalidation-history checks still apply.
  //
  // Caveat (pre-existing, inherited from the monolithic server): importing into a NON-empty
  // cache that lags the snapshot's stream position fast-forwards past messages this node
  // never applied — the importer's own pre-existing still-valid entries skip those
  // truncations, because the snapshot carries the exporter's data but not its replay
  // history. The §8 deployment pattern (restore into a fresh node before serving) is safe.
  std::string ExportSnapshot() const;
  Status ImportSnapshot(const std::string& snapshot);

  const std::string& name() const { return name_; }
  CacheStats stats() const;  // aggregated over shards; safe under concurrent load
  void ResetStats();
  size_t bytes_used() const;
  size_t version_count() const;
  size_t key_count() const;
  Timestamp last_invalidation_ts() const;

  size_t num_shards() const { return shards_.size(); }
  // Which shard a key routes to. Exposed for tests and for benchmarks that model per-shard
  // queueing.
  size_t ShardIndexForKey(const std::string& key) const;

 private:
  CacheShard* ShardForKey(const std::string& key) const;
  // Applies one in-order message: fan out to every shard (strict order is guaranteed by the
  // sequencer serializing this sink).
  void ApplySequenced(const InvalidationMessage& msg);
  void SweepAllShards();
  // Node-global LRU eviction: evicts the globally least-recently-used version (comparing
  // shard LRU tails by touch tick) until the node fits its byte budget.
  void EvictToFit();

  const std::string name_;
  const Clock* clock_;
  const Options options_;

  std::atomic<size_t> bytes_used_{0};     // shared with shards
  std::atomic<uint64_t> touch_ticker_{1};  // node-global LRU clock, shared with shards
  std::vector<std::unique_ptr<CacheShard>> shards_;
  StreamSequencer sequencer_;

  // Messages applied in order (counted once per message, not per shard).
  std::atomic<uint64_t> invalidation_messages_{0};
  // Set by the sequencer sink when a shard's op counter fires; the sweep itself runs in
  // Deliver, outside the sequencer's critical section.
  std::atomic<bool> sweep_pending_{false};
};

}  // namespace txcache

#endif  // SRC_CACHE_CACHE_SERVER_H_
