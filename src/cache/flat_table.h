// Open-addressing flat hash table for the shard's key index, safe for lock-free readers
// under epoch-based reclamation.
//
// The previous std::unordered_map cost a hit two dependent pointer chases (bucket -> node)
// plus a rehash of the key; with the hash-once contract the 64-bit FNV key hash arrives with
// the request, so the probe here is: mix the carried hash into a slot index, then linear-probe
// 16-byte slots {hash, record*} — a memcmp of the key happens only on a full 64-bit hash
// match.
//
// Concurrency contract:
//   * Writers (insert / erase / rehash) run under the shard's exclusive lock — never two at
//     once. A writer publishes a slot by storing the hash (relaxed) and THEN the record
//     pointer (release); erasure stores the tombstone sentinel. Rehash builds a fresh slot
//     array, republishes the table pointer (release), and retires the old array through the
//     EBR domain.
//   * Readers hold no lock but are inside an EBR critical region. They load the table pointer
//     (acquire) once, then probe that snapshot: ptr == null ends the probe chain, tombstones
//     are skipped, and a non-sentinel ptr (acquire) makes the paired hash store visible.
//     A reader racing an erase may still return the record — record lifetime and logical
//     validity are the shard's problem (EBR retire + per-version validity bits), not the
//     table's.
//
// Tombstone / rehash rules: erase never breaks a probe chain (tombstone keeps it walkable);
// insert reuses the first tombstone on its probe path; when live + tombstone occupancy
// crosses kMaxLoadNum/kMaxLoadDen the table rehashes — doubling if the live count alone
// justifies it, or at the same size purely to squash tombstones. Record pointers are stable
// across rehash (slots hold pointers; records never move).
//
// Record must expose `uint64_t hash` and `std::string key` members.
#ifndef SRC_CACHE_FLAT_TABLE_H_
#define SRC_CACHE_FLAT_TABLE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "src/util/ebr.h"
#include "src/util/hash.h"

namespace txcache {

template <typename Record>
class FlatHashTable {
 public:
  explicit FlatHashTable(EbrDomain* domain = &EbrDomain::Global(), size_t initial_capacity = 64)
      : domain_(domain) {
    table_.store(NewTable(RoundUpPow2(initial_capacity)), std::memory_order_release);
  }

  ~FlatHashTable() {
    // Destruction implies no concurrent readers on THIS table remain; the current array can
    // die in place, but previously rehashed arrays may still sit in retire lists (freed by
    // the domain's retire machinery).
    delete table_.load(std::memory_order_relaxed);
  }

  FlatHashTable(const FlatHashTable&) = delete;
  FlatHashTable& operator=(const FlatHashTable&) = delete;

  // Lock-free lookup; caller must be inside an EBR critical region.
  Record* Find(uint64_t hash, std::string_view key) const {
    const Table* t = table_.load(std::memory_order_acquire);
    const size_t mask = t->mask;
    for (size_t i = Mix64(hash) & mask, n = 0; n <= mask; i = (i + 1) & mask, ++n) {
      const Slot& s = t->slots[i];
      Record* r = s.ptr.load(std::memory_order_acquire);
      if (r == nullptr) {
        return nullptr;
      }
      if (r == Tombstone()) {
        continue;
      }
      if (s.hash.load(std::memory_order_relaxed) == hash && r->key == key) {
        return r;
      }
    }
    return nullptr;
  }

  // Writer-side insert (exclusive lock held). Returns the existing record for the key if one
  // is present (and does not insert), else links `rec` and returns nullptr.
  Record* InsertIfAbsent(uint64_t hash, Record* rec) {
    Table* t = table_.load(std::memory_order_relaxed);
    if ((t->filled + 1) * kMaxLoadDen >= t->capacity * kMaxLoadNum) {
      t = Rehash(t);
    }
    const size_t mask = t->mask;
    size_t tomb = kNoSlot;
    for (size_t i = Mix64(hash) & mask;; i = (i + 1) & mask) {
      Slot& s = t->slots[i];
      Record* r = s.ptr.load(std::memory_order_relaxed);
      if (r == nullptr) {
        if (tomb != kNoSlot) {
          Publish(t->slots[tomb], hash, rec);
        } else {
          Publish(s, hash, rec);
          ++t->filled;
        }
        ++live_;
        return nullptr;
      }
      if (r == Tombstone()) {
        if (tomb == kNoSlot) {
          tomb = i;
        }
        continue;
      }
      if (s.hash.load(std::memory_order_relaxed) == hash && r->key == rec->key) {
        return r;
      }
    }
  }

  // Writer-side erase (exclusive lock held): tombstones the slot so probe chains stay intact.
  // The caller still owns `rec`'s memory (typically retiring it). Returns the record, or
  // nullptr if the key was absent.
  Record* Erase(uint64_t hash, std::string_view key) {
    Table* t = table_.load(std::memory_order_relaxed);
    const size_t mask = t->mask;
    for (size_t i = Mix64(hash) & mask, n = 0; n <= mask; i = (i + 1) & mask, ++n) {
      Slot& s = t->slots[i];
      Record* r = s.ptr.load(std::memory_order_relaxed);
      if (r == nullptr) {
        return nullptr;
      }
      if (r == Tombstone()) {
        continue;
      }
      if (s.hash.load(std::memory_order_relaxed) == hash && r->key == key) {
        s.ptr.store(Tombstone(), std::memory_order_release);
        --live_;
        return r;
      }
    }
    return nullptr;
  }

  // Writer-side reset (exclusive lock held): publishes a fresh empty table and retires the
  // old array. Records themselves are NOT touched — the caller must have collected them.
  void Clear(size_t initial_capacity = 64) {
    Table* old = table_.load(std::memory_order_relaxed);
    table_.store(NewTable(RoundUpPow2(initial_capacity)), std::memory_order_release);
    live_ = 0;
    RetireTable(old);
  }

  // Writer-side iteration over live records (exclusive lock held).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    const Table* t = table_.load(std::memory_order_relaxed);
    for (size_t i = 0; i < t->capacity; ++i) {
      Record* r = t->slots[i].ptr.load(std::memory_order_relaxed);
      if (r != nullptr && r != Tombstone()) {
        fn(r);
      }
    }
  }

  size_t size() const { return live_; }
  size_t capacity() const { return table_.load(std::memory_order_relaxed)->capacity; }

 private:
  struct Slot {
    std::atomic<uint64_t> hash{0};
    std::atomic<Record*> ptr{nullptr};
  };

  struct Table {
    size_t capacity;
    size_t mask;
    size_t filled;  // live + tombstones: monotone per table, resets on rehash
    Slot* slots;
    ~Table() { delete[] slots; }
  };

  static constexpr size_t kNoSlot = static_cast<size_t>(-1);
  static constexpr size_t kMaxLoadNum = 7;  // rehash at 7/10 occupancy (incl. tombstones)
  static constexpr size_t kMaxLoadDen = 10;

  static Record* Tombstone() { return reinterpret_cast<Record*>(static_cast<uintptr_t>(1)); }

  static size_t RoundUpPow2(size_t v) {
    size_t c = 16;
    while (c < v) {
      c <<= 1;
    }
    return c;
  }

  static Table* NewTable(size_t capacity) {
    auto* t = new Table{capacity, capacity - 1, 0, new Slot[capacity]};
    return t;
  }

  static void Publish(Slot& s, uint64_t hash, Record* rec) {
    s.hash.store(hash, std::memory_order_relaxed);
    s.ptr.store(rec, std::memory_order_release);
  }

  Table* Rehash(Table* old) {
    // Double only when live occupancy warrants it; otherwise rebuild at the same size to
    // squash tombstones.
    size_t cap = old->capacity;
    if ((live_ + 1) * kMaxLoadDen >= cap * kMaxLoadNum / 2) {
      cap <<= 1;
    }
    Table* t = NewTable(cap);
    for (size_t i = 0; i < old->capacity; ++i) {
      Record* r = old->slots[i].ptr.load(std::memory_order_relaxed);
      if (r == nullptr || r == Tombstone()) {
        continue;
      }
      const uint64_t h = old->slots[i].hash.load(std::memory_order_relaxed);
      for (size_t j = Mix64(h) & t->mask;; j = (j + 1) & t->mask) {
        if (t->slots[j].ptr.load(std::memory_order_relaxed) == nullptr) {
          Publish(t->slots[j], h, r);
          ++t->filled;
          break;
        }
      }
    }
    table_.store(t, std::memory_order_release);
    RetireTable(old);
    return t;
  }

  void RetireTable(Table* t) {
    domain_->Retire(t, [](void* p) { delete static_cast<Table*>(p); });
  }

  EbrDomain* domain_;
  std::atomic<Table*> table_;
  size_t live_ = 0;  // writer-side only
};

}  // namespace txcache

#endif  // SRC_CACHE_FLAT_TABLE_H_
