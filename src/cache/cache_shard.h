// One lock-striped partition of a cache node (paper §4, sharded).
//
// A shard owns every mutable structure for the keys that hash to it: the version chains, the
// still-valid tag index, its slice of the LRU order, the per-tag invalidation history used for
// insert-time replay, and its own stats counters — all guarded by one shard mutex. Nothing in
// a shard ever takes another shard's lock, so lookups and inserts on different shards never
// contend.
//
// Cross-shard concerns live in the CacheServer frontend:
//   * the invalidation stream is sequenced once per node (StreamSequencer) and fanned out to
//     every shard in strict seqno order, so each shard observes the same totally ordered
//     stream the paper's single-structure node does — the §4.2 insert/invalidate-race argument
//     then holds per shard verbatim;
//   * eviction is node-global: shards share an atomic byte counter and a monotonically
//     increasing touch tick, and the frontend evicts from whichever shard holds the globally
//     least-recently-used tail, preserving the monolithic server's LRU behavior;
//   * the staleness sweep fires from any one shard's op counter but sweeps all shards, so
//     garbage in cold shards is still collected when traffic is skewed.
#ifndef SRC_CACHE_CACHE_SHARD_H_
#define SRC_CACHE_CACHE_SHARD_H_

#include <atomic>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/bus/invalidation.h"
#include "src/cache/cache_types.h"
#include "src/util/clock.h"
#include "src/util/serde.h"
#include "src/util/status.h"

namespace txcache {

// What a capacity eviction freed. The frontend uses it to maintain the node-level atomic
// eviction stats and to fold the entry's realized benefit-per-byte (hits * fill_cost / bytes
// over its lifetime) back into the owning function's admission profile.
struct EvictedVersion {
  size_t bytes = 0;
  uint64_t fill_cost_us = 0;
  uint64_t hits = 0;
  std::string function;  // CacheKeyFunction of the evicted key
};

// Cheapest victim this shard could offer right now; the frontend compares candidates across
// shards to reconstruct a node-global eviction order (stale-first, then lowest score).
struct EvictionCandidate {
  bool has_stale = false;
  uint64_t stale_seq = 0;  // node-global ordinal assigned when the version went stale
  bool has_scored = false;
  double score = 0.0;
  uint64_t tick = 0;  // tie-break: older touch evicted first
};

class CacheShard {
 public:
  CacheShard(const Clock* clock, const CacheOptions& options,
             std::atomic<size_t>* global_bytes, std::atomic<uint64_t>* touch_ticker,
             std::atomic<double>* aging_floor);
  ~CacheShard();

  // Byte cost a version created from `req` would be charged against the node budget. Public so
  // the frontend's admission gate and the tests price entries with the same formula.
  static size_t EstimateBytes(const InsertRequest& req);

  CacheShard(const CacheShard&) = delete;
  CacheShard& operator=(const CacheShard&) = delete;

  LookupResponse Lookup(const LookupRequest& req);
  // Answers req.lookups[i] for every i in `indices` under a single lock acquisition, writing
  // each result to out->responses[i]. Byte-identical to issuing the lookups one at a time.
  void LookupBatch(const MultiLookupRequest& req, const std::vector<uint32_t>& indices,
                   MultiLookupResponse* out);
  // `*sweep_due` is set when this shard's mutating-op counter crossed the sweep interval; the
  // caller (frontend) then sweeps all shards without any shard lock held.
  Status Insert(const InsertRequest& req, bool* sweep_due);

  // Applies one invalidation message. The caller (the node's sequencer sink) guarantees
  // strict seqno order and no concurrent invocations.
  void ApplyInvalidation(const InvalidationMessage& msg, bool* sweep_due);

  // Eager eviction of versions invalidated longer ago than any staleness limit accepts.
  void SweepStale();

  // Node-global eviction support. Under kLru the frontend compares OldestTick across shards
  // and evicts from the globally least-recently-used tail; under kCostAware it compares
  // PeekVictim candidates (stale-first, then lowest benefit-per-byte score). EvictOne evicts
  // this shard's cheapest victim per the configured policy and reports what was freed.
  std::optional<uint64_t> OldestTick() const;
  std::optional<EvictionCandidate> PeekVictim() const;
  std::optional<EvictedVersion> EvictOne();

  // Per-function hit counters (key prefix parsed via CacheKeyFunction), merged by the
  // frontend into FunctionStats().
  std::unordered_map<std::string, uint64_t> FunctionHits() const;

  void Flush();  // drops cached data; keeps invalidation history and stream position

  // Snapshot/rejoin support. ExportEntries serializes this shard's resident versions (same
  // record format the monolithic server used); AdoptStreamPosition fast-forwards the shard's
  // view of the last applied invalidation timestamp (snapshot import, flush-rejoin). With
  // raise_history_floor the per-tag invalidation history floor is lifted to the same
  // timestamp: the shard never saw the messages in the adopted gap, so inserts computed
  // before it must be conservatively truncated rather than trusted as still valid.
  std::pair<uint64_t, std::string> ExportEntries() const;
  void AdoptStreamPosition(Timestamp last_invalidation_ts, bool raise_history_floor = false);

  CacheStats stats() const;  // this shard's partial counters
  void ResetStats();
  size_t version_count() const;
  size_t key_count() const;
  Timestamp last_invalidation_ts() const;

 private:
  struct Version {
    Interval interval;                      // truncated in place by invalidations
    Timestamp known_valid_through = kTimestampZero;  // max(lower, computed_at)
    bool still_valid = false;
    std::string value;
    std::vector<InvalidationTag> tags;      // registered in tag index iff still_valid
    WallClock invalidated_wallclock = 0;    // set when truncated
    size_t bytes = 0;
    uint64_t touch_tick = 0;                // node-global LRU ordinal (last touch)
    const std::string* key = nullptr;       // points at the map node's key (stable)
    std::list<Version*>::iterator lru_it;   // position in lru_

    // Cost-aware policy state. A resident version is in exactly one of the two structures:
    // still-valid versions carry a GreedyDual-style score (aging floor + fill_cost/bytes,
    // refreshed on every hit) in score_index_; closed-interval versions sit in stale_lru_ in
    // the order they went stale and are evicted first.
    uint64_t fill_cost_us = 0;
    uint64_t hit_count = 0;
    double score = 0.0;
    std::multimap<double, Version*>::iterator score_it;  // valid iff in_score_index
    std::list<Version*>::iterator stale_it;              // valid iff in_stale_list
    bool in_score_index = false;
    bool in_stale_list = false;
    uint64_t stale_seq = 0;  // node-global ordinal taken when listed stale
  };

  struct KeyEntry {
    // Sorted by interval.lower; intervals pairwise disjoint.
    std::vector<std::unique_ptr<Version>> versions;
    bool ever_inserted = false;
  };

  // All helpers assume mu_ is held.
  LookupResponse LookupLocked(const LookupRequest& req);
  void TruncateLocked(Version* v, Timestamp ts, WallClock wallclock);
  void RegisterTagsLocked(Version* v);
  void UnregisterTagsLocked(Version* v);
  void RemoveVersionLocked(Version* v);
  void TouchLocked(Version* v);
  void SweepStaleLocked();
  void RecordHistoryLocked(const InvalidationMessage& msg);
  // Earliest invalidation affecting `tags` with timestamp > after; kTimestampInfinity if none.
  Timestamp EarliestInvalidationAfterLocked(const std::vector<InvalidationTag>& tags,
                                            Timestamp after) const;
  Timestamp EffectiveUpperLocked(const Version& v) const;
  bool CountOpLocked();  // bumps the mutating-op counter; true when a sweep is due
  bool cost_aware() const { return options_.policy == EvictionPolicy::kCostAware; }
  void AddToScoreIndexLocked(Version* v);
  void AddToStaleListLocked(Version* v);
  void DetachPolicyStateLocked(Version* v);
  EvictedVersion MakeEvictedLocked(const Version& v) const;

  const Clock* clock_;
  const CacheOptions options_;
  std::atomic<size_t>* const global_bytes_;    // shared across the node's shards
  std::atomic<uint64_t>* const touch_ticker_;  // shared monotone LRU clock
  std::atomic<double>* const aging_floor_;     // shared GreedyDual aging value (max evicted score)

  mutable std::mutex mu_;
  std::unordered_map<std::string, KeyEntry> map_;
  std::list<Version*> lru_;  // front = most recently used within this shard
  // Cost-aware structures (maintained only under EvictionPolicy::kCostAware).
  std::multimap<double, Version*> score_index_;  // still-valid versions by benefit score
  std::list<Version*> stale_lru_;                // closed-interval versions, oldest-stale first
  std::unordered_map<std::string, uint64_t> fn_hits_;  // per-function hit counters
  size_t version_count_ = 0;

  // Still-valid version registry: concrete tag -> versions carrying it; table -> versions
  // carrying any tag of that table (serves wildcard invalidation messages); table -> versions
  // holding a wildcard tag on that table (invalidated by any message touching the table).
  std::unordered_map<InvalidationTag, std::unordered_set<Version*>, TagHasher> tag_index_;
  std::unordered_map<std::string, std::unordered_set<Version*>> table_index_;
  std::unordered_map<std::string, std::unordered_set<Version*>> wildcard_holders_;

  // Timestamp of the last invalidation fanned out to this shard. Every shard receives every
  // message, so after a Deliver completes all shards agree; mid-fan-out a shard may briefly
  // lag, which only makes its effective upper bounds more conservative.
  Timestamp last_invalidation_ts_ = kTimestampZero;

  // Recent invalidation history for insert-time replay: per concrete tag, per table (wildcard
  // messages), and per table (any message touching the table). Each shard keeps the full
  // history because an insert carrying any tag can hash to any shard.
  std::unordered_map<InvalidationTag, std::vector<Timestamp>, TagHasher> tag_history_;
  std::unordered_map<std::string, std::vector<Timestamp>> table_wildcard_history_;
  std::unordered_map<std::string, std::vector<Timestamp>> table_any_history_;
  Timestamp history_floor_ = kTimestampZero;  // history below this has been pruned

  uint64_t ops_since_sweep_ = 0;
  CacheStats stats_;
};

}  // namespace txcache

#endif  // SRC_CACHE_CACHE_SHARD_H_
