// One lock-striped partition of a cache node (paper §4, sharded).
//
// A shard owns every mutable structure for the keys that hash to it: the version chains, the
// still-valid tag index, its slice of the LRU order, the per-tag invalidation history used for
// insert-time replay, and its own stats counters — all guarded by one shard lock. Nothing in
// a shard ever takes another shard's lock, so lookups and inserts on different shards never
// contend.
//
// Read fast path (docs/architecture.md §"Read fast path"): the shard lock is a shared mutex.
// Lookups (and the other read-only accessors) take only the SHARED side and perform zero
// deep copies — a hit aliases the resident value/tag buffers through shared_ptrs, which also
// keep the bytes alive after the version is evicted or truncated. The LRU/score/profile
// bookkeeping a hit owes is deferred: the hit stores a fresh recency tick on the version
// atomically and records the version in a bounded multi-producer touch buffer; the next
// operation that holds the exclusive lock (insert, invalidation, sweep, eviction) drains the
// buffer and applies the accumulated maintenance in one pass. Every exclusive section that
// can destroy a version drains first, so the buffer never holds a dangling pointer.
//
// Cross-shard concerns live in the CacheServer frontend:
//   * the invalidation stream is sequenced once per node (StreamSequencer) and fanned out to
//     every shard in strict seqno order, so each shard observes the same totally ordered
//     stream the paper's single-structure node does — the §4.2 insert/invalidate-race argument
//     then holds per shard verbatim;
//   * eviction is node-global: shards share an atomic byte counter and a monotonically
//     increasing touch tick, and the frontend evicts from whichever shard holds the globally
//     least-recently-used tail, preserving the monolithic server's LRU behavior;
//   * the staleness sweep fires from any one shard's op counter but sweeps all shards, so
//     garbage in cold shards is still collected when traffic is skewed.
#ifndef SRC_CACHE_CACHE_SHARD_H_
#define SRC_CACHE_CACHE_SHARD_H_

#include <atomic>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/bus/invalidation.h"
#include "src/cache/cache_types.h"
#include "src/cache/function_advisor.h"
#include "src/util/clock.h"
#include "src/util/hash.h"
#include "src/util/serde.h"
#include "src/util/shared_mutex.h"
#include "src/util/status.h"

namespace txcache {

// What a capacity eviction freed. The frontend uses it to maintain the node-level atomic
// eviction stats and to fold the entry's realized benefit-per-byte (hits * fill_cost / bytes
// over its lifetime) back into the owning function's admission profile.
struct EvictedVersion {
  size_t bytes = 0;
  uint64_t fill_cost_us = 0;
  uint64_t hits = 0;
  std::string function;  // CacheKeyFunction of the evicted key (parsed once, at insert)
};

// Cheapest victim this shard could offer right now; the frontend compares candidates across
// shards to reconstruct a node-global eviction order (stale-first, then lowest score).
struct EvictionCandidate {
  bool has_stale = false;
  uint64_t stale_seq = 0;  // node-global ordinal assigned when the version went stale
  bool has_scored = false;
  double score = 0.0;
  uint64_t tick = 0;  // tie-break: older touch evicted first
};

// One victim of a hypothetical eviction, as previewed by the size-aware admission gate. The
// frontend pools stale previews (their relative order cannot change the sum of zero-benefit
// bytes), then merges scored previews cheapest-score first, summing `benefit_us` until the
// candidate fill's bytes are covered — the fill's displacement cost.
struct VictimPreview {
  bool stale = false;      // listed stale (closed interval or TTL-demoted): evicted first
  double score = 0.0;      // eviction order among scored victims
  size_t bytes = 0;
  // Remaining benefit: max(0, score - aging floor) * bytes for scored victims — the µs of
  // recompute the entry is still expected to save beyond what the policy would already evict
  // at. Stale-listed victims are worthless by definition (they can only serve pinned old
  // snapshots), so displacing them is free.
  double benefit_us = 0.0;
};

class CacheShard {
 public:
  CacheShard(const Clock* clock, const CacheOptions& options,
             std::atomic<size_t>* global_bytes, std::atomic<uint64_t>* touch_ticker,
             std::atomic<double>* aging_floor, FunctionAdvisor* advisor);
  ~CacheShard();

  // Byte cost a version created from `req` would be charged against the node budget. Public so
  // the frontend's admission gate and the tests price entries with the same formula.
  static size_t EstimateBytes(const InsertRequest& req);

  CacheShard(const CacheShard&) = delete;
  CacheShard& operator=(const CacheShard&) = delete;

  // `key_hash` is the request's carried (or frontend-computed) Fnv1a key hash; the shard
  // reuses it for the map probe, so a hit never rehashes nor materializes a key copy.
  LookupResponse Lookup(const LookupRequest& req, uint64_t key_hash);
  // Answers req.lookups[i] for every i in `indices` under a single lock acquisition, writing
  // each result to out->responses[i]. Byte-identical to issuing the lookups one at a time.
  void LookupBatch(const MultiLookupRequest& req, const std::vector<uint32_t>& indices,
                   MultiLookupResponse* out);
  // `function` is CacheKeyFunction(req.key), parsed once by the frontend (empty under plain
  // LRU, which never uses it); `hints` is the function's current advisory snapshot, stamped
  // on the stored version so the zero-copy hit path can serve it without a map probe.
  // `*sweep_due` is set when this shard's mutating-op counter crossed the sweep interval;
  // the caller (frontend) then sweeps all shards without any shard lock held.
  Status Insert(const InsertRequest& req, uint64_t key_hash, std::string function,
                std::shared_ptr<const AdvisoryHints> hints, bool* sweep_due);

  // Applies one invalidation message. The caller (the node's sequencer sink) guarantees
  // strict seqno order and no concurrent invocations.
  void ApplyInvalidation(const InvalidationMessage& msg, bool* sweep_due);

  // Per-function learned-lifetime snapshot, shared across one sweep pass.
  using LifetimeSnapshot = std::unordered_map<std::string, FunctionAdvisor::LifetimeEntry>;

  // Eager eviction of versions invalidated longer ago than any staleness limit accepts,
  // followed by the TTL-expiry demotion pass. `learned` is the advisor snapshot the caller
  // took once for the whole all-shards sweep (null: this shard snapshots for itself —
  // standalone callers, tests).
  void SweepStale(const LifetimeSnapshot* learned = nullptr);

  // Node-global eviction support. Under kLru the frontend compares OldestTick across shards
  // and evicts from the globally least-recently-used tail; under kCostAware it compares
  // PeekVictim candidates (stale-first, then lowest benefit-per-byte score). EvictOne evicts
  // this shard's cheapest victim per the configured policy and reports what was freed. The
  // peeks read under the shared lock against possibly-undrained touches, so the cross-shard
  // choice is best-effort; EvictOne drains first, so within the chosen shard the policy
  // order is exact.
  std::optional<uint64_t> OldestTick() const;
  std::optional<EvictionCandidate> PeekVictim() const;
  std::optional<EvictedVersion> EvictOne();
  // Size-aware admission support: the victims this shard would offer, in its own eviction
  // order (stale list front-to-back, then score index ascending), until their summed bytes
  // reach `bytes_needed` or the shard runs out. Shared-lock read against possibly-undrained
  // touches — best-effort, like PeekVictim; the admission decision it feeds is a policy
  // heuristic, never a correctness question.
  std::vector<VictimPreview> PreviewVictims(size_t bytes_needed) const;

  // Per-function hit counters (attributed at touch-buffer drain time from the function name
  // stored on each version), merged by the frontend into FunctionStats(). Drains pending
  // touches so the profile is current as of this call.
  std::unordered_map<std::string, uint64_t> FunctionHits();

  void Flush();  // drops cached data; keeps invalidation history and stream position

  // Snapshot/rejoin support. ExportEntries serializes this shard's resident versions (same
  // record format the monolithic server used); AdoptStreamPosition fast-forwards the shard's
  // view of the last applied invalidation timestamp (snapshot import, flush-rejoin). With
  // raise_history_floor the per-tag invalidation history floor is lifted to the same
  // timestamp: the shard never saw the messages in the adopted gap, so inserts computed
  // before it must be conservatively truncated rather than trusted as still valid.
  std::pair<uint64_t, std::string> ExportEntries() const;
  void AdoptStreamPosition(Timestamp last_invalidation_ts, bool raise_history_floor = false);

  CacheStats stats() const;  // this shard's partial counters
  void ResetStats();
  size_t version_count() const;
  size_t key_count() const;
  Timestamp last_invalidation_ts() const;

  // Lifetime count of exclusive acquisitions of this shard's lock. The read fast path's "a
  // hit takes no exclusive lock" claim is asserted against this by tests and benchmarks.
  uint64_t exclusive_lock_acquisitions() const { return mu_.exclusive_acquisitions(); }
  uint64_t shared_lock_acquisitions() const { return mu_.shared_acquisitions(); }
  // True when the touch buffer has overflowed since the last drain (diagnostic; tests use it
  // to force-cover the overflow repair path).
  bool touch_buffer_overflowed() const {
    return touch_overflow_.load(std::memory_order_relaxed);
  }

 private:
  struct Version {
    Interval interval;                      // truncated in place by invalidations
    Timestamp known_valid_through = kTimestampZero;  // max(lower, computed_at)
    bool still_valid = false;
    // Immutable once inserted; hits hand out aliases, so the buffers must never be mutated
    // in place (truncation narrows `interval`, never rewrites the payload).
    std::shared_ptr<const std::string> value;
    std::shared_ptr<const std::vector<InvalidationTag>> tags;  // in tag index iff still_valid
    WallClock invalidated_wallclock = 0;    // set when truncated
    size_t bytes = 0;
    // Node-global LRU ordinal of the last touch. Written by hits under the SHARED lock
    // (relaxed store), so it is atomic; all other Version state is exclusive-lock-only.
    std::atomic<uint64_t> touch_tick{0};
    std::atomic<uint64_t> hit_count{0};     // bumped by hits under the shared lock
    const std::string* key = nullptr;       // points at the map node's key (stable)
    std::string function;                   // CacheKeyFunction(key); empty under kLru
    std::list<Version*>::iterator lru_it;   // position in lru_
    WallClock inserted_wallclock = 0;       // TTL learning: residency start
    // Advisory snapshot of the function's hints, stamped at insert and refreshed at drain
    // (exclusive-lock writes only; the shared-lock hit path copies the shared_ptr).
    std::shared_ptr<const AdvisoryHints> hints;

    // Cost-aware policy state. A resident version is in exactly one of the two structures:
    // still-valid versions carry a GreedyDual-style score (aging floor + fill_cost/bytes,
    // refreshed at drain time for every hit batch) in score_index_; closed-interval versions
    // — plus still-valid versions demoted for outliving their function's learned lifetime
    // (ttl_demoted) — sit in stale_lru_ in the order they went stale and are evicted first.
    uint64_t fill_cost_us = 0;
    uint64_t attributed_hits = 0;  // hit_count already folded into fn_hits_ (drain-side)
    double score = 0.0;
    std::multimap<double, Version*>::iterator score_it;  // valid iff in_score_index
    std::list<Version*>::iterator stale_it;              // valid iff in_stale_list
    bool in_score_index = false;
    bool in_stale_list = false;
    bool ttl_demoted = false;  // in stale_lru_ while still_valid (learned-TTL expiry)
    uint64_t stale_seq = 0;  // node-global ordinal taken when listed stale
  };

  struct KeyEntry {
    // Sorted by interval.lower; intervals pairwise disjoint.
    std::vector<std::unique_ptr<Version>> versions;
    bool ever_inserted = false;
  };

  // Heterogeneous probe for map_: carries the key view plus its precomputed Fnv1a hash, so
  // the read path neither rehashes nor materializes a temporary std::string key.
  struct HashedKey {
    std::string_view key;
    uint64_t hash;  // must equal Fnv1a(key)
  };
  struct KeyHasher {
    using is_transparent = void;
    size_t operator()(const HashedKey& k) const { return static_cast<size_t>(k.hash); }
    size_t operator()(const std::string& k) const { return static_cast<size_t>(Fnv1a(k)); }
  };
  struct KeyEqual {
    using is_transparent = void;
    bool operator()(const std::string& a, const std::string& b) const { return a == b; }
    bool operator()(const HashedKey& a, const std::string& b) const { return a.key == b; }
    bool operator()(const std::string& a, const HashedKey& b) const { return a == b.key; }
  };

  // Bounded multi-producer touch queue. Producers (hits) run under the SHARED lock and claim
  // slots with an atomic ticket; the single consumer (DrainTouchesLocked) runs under the
  // EXCLUSIVE lock, so production and consumption are never concurrent — the shared/exclusive
  // handoff of the shard lock is the synchronization point.
  class TouchBuffer {
   public:
    explicit TouchBuffer(size_t capacity)
        : capacity_(capacity < 1 ? 1 : capacity),
          slots_(std::make_unique<std::atomic<Version*>[]>(capacity_)) {}

    // Returns false (and leaves the buffer untouched) when full.
    bool Record(Version* v) {
      const uint64_t ticket = tickets_.fetch_add(1, std::memory_order_relaxed);
      if (ticket >= capacity_) {
        // Over-claimed: hand the ticket back. Tickets below capacity_ are still unique —
        // the counter can only drop back toward capacity_, never below the claimed count.
        tickets_.fetch_sub(1, std::memory_order_relaxed);
        return false;
      }
      slots_[ticket].store(v, std::memory_order_release);
      return true;
    }

    // Consumer side (exclusive lock held; no concurrent Record calls by construction).
    size_t pending() const {
      const uint64_t n = tickets_.load(std::memory_order_acquire);
      return n < capacity_ ? static_cast<size_t>(n) : capacity_;
    }
    Version* slot(size_t i) const { return slots_[i].load(std::memory_order_acquire); }
    void Reset() { tickets_.store(0, std::memory_order_relaxed); }

   private:
    const size_t capacity_;
    std::unique_ptr<std::atomic<Version*>[]> slots_;
    std::atomic<uint64_t> tickets_{0};
  };

  // Mutating *Locked helpers assume the EXCLUSIVE side of mu_ is held; the const ones only
  // require some side of it (the shared read path runs them under the shared side).
  //
  // Matching core shared by both read paths: classifies the miss (resp->miss) or returns the
  // winning version with resp->interval filled. Pure read; safe under the shared lock.
  Version* MatchLocked(const LookupRequest& req, uint64_t key_hash, LookupResponse* resp);
  void CountMissShared(MissKind kind);  // atomic miss counters (shared-lock safe)
  LookupResponse LookupShared(const LookupRequest& req, uint64_t key_hash);
  LookupResponse LookupExclusive(const LookupRequest& req, uint64_t key_hash);
  void TruncateLocked(Version* v, Timestamp ts, WallClock wallclock);
  void RegisterTagsLocked(Version* v);
  void UnregisterTagsLocked(Version* v);
  void RemoveVersionLocked(Version* v);
  // Applies every deferred hit: LRU front-moves in touch order, score refreshes, and
  // per-function hit attribution. MUST run at the top of any exclusive section that may
  // remove a version (the buffer holds raw Version pointers).
  void DrainTouchesLocked();
  void SweepStaleLocked();
  // TTL-expiry pass (cost-aware only): demotes still-valid versions that outlived
  // slack x their function's learned lifetime from the score index to the stale list.
  // Validity is untouched — this is an eviction preference, so the no-resurrect/no-widen
  // property holds trivially across demotions.
  void DemoteTtlExpiredLocked(const LifetimeSnapshot& learned);
  void RecordHistoryLocked(const InvalidationMessage& msg);
  // Earliest invalidation affecting `tags` with timestamp > after; kTimestampInfinity if none.
  Timestamp EarliestInvalidationAfterLocked(const std::vector<InvalidationTag>& tags,
                                            Timestamp after) const;
  Timestamp EffectiveUpperLocked(const Version& v) const;
  bool CountOpLocked();  // bumps the mutating-op counter; true when a sweep is due
  bool cost_aware() const { return options_.policy == EvictionPolicy::kCostAware; }
  void AddToScoreIndexLocked(Version* v);
  void AddToStaleListLocked(Version* v);
  void DetachPolicyStateLocked(Version* v);
  void AttributeHitsLocked(Version* v);
  EvictedVersion MakeEvictedLocked(const Version& v) const;

  const Clock* clock_;
  const CacheOptions options_;
  std::atomic<size_t>* const global_bytes_;    // shared across the node's shards
  std::atomic<uint64_t>* const touch_ticker_;  // shared monotone LRU clock
  std::atomic<double>* const aging_floor_;     // shared GreedyDual aging value (max evicted score)
  FunctionAdvisor* const advisor_;             // node-global TTL learning + hint snapshots

  // Readers (Lookup, LookupBatch, PeekVictim, OldestTick, stats, ExportEntries, counters)
  // take the shared side; every mutation takes the exclusive side. The instrumentation backs
  // the "a hit acquires no exclusive lock" acceptance test.
  mutable InstrumentedSharedMutex mu_;
  std::unordered_map<std::string, KeyEntry, KeyHasher, KeyEqual> map_;
  std::list<Version*> lru_;  // front = most recently used within this shard
  // Cost-aware structures (maintained only under EvictionPolicy::kCostAware).
  std::multimap<double, Version*> score_index_;  // still-valid versions by benefit score
  std::list<Version*> stale_lru_;                // closed-interval versions, oldest-stale first
  std::unordered_map<std::string, uint64_t> fn_hits_;  // per-function hit counters
  size_t version_count_ = 0;

  // Deferred hit maintenance (see class comment). touch_overflow_ marks that at least one
  // hit could not be recorded since the last drain; the drain then repairs the full LRU
  // order from the per-version ticks instead of trusting the (incomplete) queue.
  TouchBuffer touch_buffer_;
  std::atomic<bool> touch_overflow_{false};
  std::vector<Version*> drain_scratch_;  // reused across drains; exclusive-lock-only

  // Lookup-path counters, bumped under the shared lock — hence atomic. The remaining fields
  // of stats_ are mutated only under the exclusive lock and folded together in stats().
  std::atomic<uint64_t> lookups_{0};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> miss_compulsory_{0};
  std::atomic<uint64_t> miss_staleness_{0};
  std::atomic<uint64_t> miss_capacity_{0};
  std::atomic<uint64_t> miss_consistency_{0};

  // Still-valid version registry: concrete tag -> versions carrying it; table -> versions
  // carrying any tag of that table (serves wildcard invalidation messages); table -> versions
  // holding a wildcard tag on that table (invalidated by any message touching the table).
  std::unordered_map<InvalidationTag, std::unordered_set<Version*>, TagHasher> tag_index_;
  std::unordered_map<std::string, std::unordered_set<Version*>> table_index_;
  std::unordered_map<std::string, std::unordered_set<Version*>> wildcard_holders_;

  // Timestamp of the last invalidation fanned out to this shard. Every shard receives every
  // message, so after a Deliver completes all shards agree; mid-fan-out a shard may briefly
  // lag, which only makes its effective upper bounds more conservative.
  Timestamp last_invalidation_ts_ = kTimestampZero;

  // Recent invalidation history for insert-time replay: per concrete tag, per table (wildcard
  // messages), and per table (any message touching the table). Each shard keeps the full
  // history because an insert carrying any tag can hash to any shard.
  std::unordered_map<InvalidationTag, std::vector<Timestamp>, TagHasher> tag_history_;
  std::unordered_map<std::string, std::vector<Timestamp>> table_wildcard_history_;
  std::unordered_map<std::string, std::vector<Timestamp>> table_any_history_;
  Timestamp history_floor_ = kTimestampZero;  // history below this has been pruned

  uint64_t ops_since_sweep_ = 0;
  CacheStats stats_;
};

}  // namespace txcache

#endif  // SRC_CACHE_CACHE_SHARD_H_
