// One lock-striped partition of a cache node (paper §4, sharded).
//
// A shard owns every mutable structure for the keys that hash to it: the version chains, the
// still-valid tag index, its slice of the LRU order, the per-tag invalidation history used for
// insert-time replay, and its own stats counters — all guarded by one shard mutex. Nothing in
// a shard ever takes another shard's lock, so lookups and inserts on different shards never
// contend.
//
// Cross-shard concerns live in the CacheServer frontend:
//   * the invalidation stream is sequenced once per node (StreamSequencer) and fanned out to
//     every shard in strict seqno order, so each shard observes the same totally ordered
//     stream the paper's single-structure node does — the §4.2 insert/invalidate-race argument
//     then holds per shard verbatim;
//   * eviction is node-global: shards share an atomic byte counter and a monotonically
//     increasing touch tick, and the frontend evicts from whichever shard holds the globally
//     least-recently-used tail, preserving the monolithic server's LRU behavior;
//   * the staleness sweep fires from any one shard's op counter but sweeps all shards, so
//     garbage in cold shards is still collected when traffic is skewed.
#ifndef SRC_CACHE_CACHE_SHARD_H_
#define SRC_CACHE_CACHE_SHARD_H_

#include <atomic>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/bus/invalidation.h"
#include "src/cache/cache_types.h"
#include "src/util/clock.h"
#include "src/util/serde.h"
#include "src/util/status.h"

namespace txcache {

class CacheShard {
 public:
  CacheShard(const Clock* clock, const CacheOptions& options,
             std::atomic<size_t>* global_bytes, std::atomic<uint64_t>* touch_ticker);
  ~CacheShard();

  CacheShard(const CacheShard&) = delete;
  CacheShard& operator=(const CacheShard&) = delete;

  LookupResponse Lookup(const LookupRequest& req);
  // Answers req.lookups[i] for every i in `indices` under a single lock acquisition, writing
  // each result to out->responses[i]. Byte-identical to issuing the lookups one at a time.
  void LookupBatch(const MultiLookupRequest& req, const std::vector<uint32_t>& indices,
                   MultiLookupResponse* out);
  // `*sweep_due` is set when this shard's mutating-op counter crossed the sweep interval; the
  // caller (frontend) then sweeps all shards without any shard lock held.
  Status Insert(const InsertRequest& req, bool* sweep_due);

  // Applies one invalidation message. The caller (the node's sequencer sink) guarantees
  // strict seqno order and no concurrent invocations.
  void ApplyInvalidation(const InvalidationMessage& msg, bool* sweep_due);

  // Eager eviction of versions invalidated longer ago than any staleness limit accepts.
  void SweepStale();

  // Node-global LRU support: the frontend compares OldestTick across shards and evicts one
  // version from the globally least-recently-used tail until the node fits its budget.
  std::optional<uint64_t> OldestTick() const;
  bool EvictOne();

  void Flush();  // drops cached data; keeps invalidation history and stream position

  // Snapshot support. ExportEntries serializes this shard's resident versions (same record
  // format the monolithic server used); AdoptStreamPosition fast-forwards the shard's view of
  // the last applied invalidation timestamp on snapshot import.
  std::pair<uint64_t, std::string> ExportEntries() const;
  void AdoptStreamPosition(Timestamp last_invalidation_ts);

  CacheStats stats() const;  // this shard's partial counters
  void ResetStats();
  size_t version_count() const;
  size_t key_count() const;
  Timestamp last_invalidation_ts() const;

 private:
  struct Version {
    Interval interval;                      // truncated in place by invalidations
    Timestamp known_valid_through = kTimestampZero;  // max(lower, computed_at)
    bool still_valid = false;
    std::string value;
    std::vector<InvalidationTag> tags;      // registered in tag index iff still_valid
    WallClock invalidated_wallclock = 0;    // set when truncated
    size_t bytes = 0;
    uint64_t touch_tick = 0;                // node-global LRU ordinal (last touch)
    const std::string* key = nullptr;       // points at the map node's key (stable)
    std::list<Version*>::iterator lru_it;   // position in lru_
  };

  struct KeyEntry {
    // Sorted by interval.lower; intervals pairwise disjoint.
    std::vector<std::unique_ptr<Version>> versions;
    bool ever_inserted = false;
  };

  // All helpers assume mu_ is held.
  LookupResponse LookupLocked(const LookupRequest& req);
  void TruncateLocked(Version* v, Timestamp ts, WallClock wallclock);
  void RegisterTagsLocked(Version* v);
  void UnregisterTagsLocked(Version* v);
  void RemoveVersionLocked(Version* v);
  void TouchLocked(Version* v);
  void SweepStaleLocked();
  void RecordHistoryLocked(const InvalidationMessage& msg);
  // Earliest invalidation affecting `tags` with timestamp > after; kTimestampInfinity if none.
  Timestamp EarliestInvalidationAfterLocked(const std::vector<InvalidationTag>& tags,
                                            Timestamp after) const;
  Timestamp EffectiveUpperLocked(const Version& v) const;
  bool CountOpLocked();  // bumps the mutating-op counter; true when a sweep is due

  const Clock* clock_;
  const CacheOptions options_;
  std::atomic<size_t>* const global_bytes_;    // shared across the node's shards
  std::atomic<uint64_t>* const touch_ticker_;  // shared monotone LRU clock

  mutable std::mutex mu_;
  std::unordered_map<std::string, KeyEntry> map_;
  std::list<Version*> lru_;  // front = most recently used within this shard
  size_t version_count_ = 0;

  // Still-valid version registry: concrete tag -> versions carrying it; table -> versions
  // carrying any tag of that table (serves wildcard invalidation messages); table -> versions
  // holding a wildcard tag on that table (invalidated by any message touching the table).
  std::unordered_map<InvalidationTag, std::unordered_set<Version*>, TagHasher> tag_index_;
  std::unordered_map<std::string, std::unordered_set<Version*>> table_index_;
  std::unordered_map<std::string, std::unordered_set<Version*>> wildcard_holders_;

  // Timestamp of the last invalidation fanned out to this shard. Every shard receives every
  // message, so after a Deliver completes all shards agree; mid-fan-out a shard may briefly
  // lag, which only makes its effective upper bounds more conservative.
  Timestamp last_invalidation_ts_ = kTimestampZero;

  // Recent invalidation history for insert-time replay: per concrete tag, per table (wildcard
  // messages), and per table (any message touching the table). Each shard keeps the full
  // history because an insert carrying any tag can hash to any shard.
  std::unordered_map<InvalidationTag, std::vector<Timestamp>, TagHasher> tag_history_;
  std::unordered_map<std::string, std::vector<Timestamp>> table_wildcard_history_;
  std::unordered_map<std::string, std::vector<Timestamp>> table_any_history_;
  Timestamp history_floor_ = kTimestampZero;  // history below this has been pruned

  uint64_t ops_since_sweep_ = 0;
  CacheStats stats_;
};

}  // namespace txcache

#endif  // SRC_CACHE_CACHE_SHARD_H_
