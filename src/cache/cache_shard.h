// One lock-striped partition of a cache node (paper §4, sharded).
//
// A shard owns every mutable structure for the keys that hash to it: the version chains, the
// still-valid tag index, its slice of the LRU order, the per-tag invalidation history used for
// insert-time replay, and its own stats counters. Mutations (insert, invalidation, eviction,
// sweep, flush) serialize on the shard's exclusive lock, exactly as before.
//
// Read fast path (docs/architecture.md §"Memory reclamation and the flat shard table"): a
// zero-copy lookup holds NO shard lock at all. It enters an epoch-based-reclamation critical
// region (EbrDomain::Guard — one seq_cst RMW on the calling thread's own epoch slot), probes
// an open-addressing flat table with the request's carried Fnv1a hash (memcmp only on a full
// 64-bit hash match), walks an immutable copy-on-write version array, and aliases the hit's
// resident block. Writers never free anything a reader might still reach: removed versions,
// superseded version arrays, displaced flat-table arrays and flushed key slots are RETIRED
// into the EBR domain and reclaimed only after every pinned reader epoch has moved on.
//
// What a hit writes: its own thread's epoch slot, the winning version's recency tick +
// hit counter (per-version lines, contended only by hitters of the same key), one slot in its
// thread-stripe of the touch buffer, and its thread-stripe of the lookup counters. It bumps
// ONE shared_ptr refcount — the hit's resident block bundles value + tags + hints into a
// single control block, so the response's three aliases share one count. The node-global LRU
// tick is handed out in thread-local batches, so the shared ticker is touched once per batch,
// not once per hit. Nothing else a hit touches is shared-writable — no lock word, no shard-
// wide counter — which is what lets hit throughput scale with cores.
//
// Deferred hit maintenance is unchanged in spirit: the LRU splice, score refresh and
// per-function attribution a hit owes are queued in per-thread-stripe touch buffers and
// applied by the next exclusive section (insert, invalidation, sweep, eviction). Because
// readers no longer quiesce (they hold no lock), a drained record may point at a version an
// earlier exclusive section already removed — the drain validates every record against the
// shard's live-version set before dereferencing, making stale records inert.
//
// Cross-shard concerns live in the CacheServer frontend:
//   * the invalidation stream is sequenced once per node (StreamSequencer) and fanned out to
//     every shard in strict seqno order, so each shard observes the same totally ordered
//     stream the paper's single-structure node does — the §4.2 insert/invalidate-race argument
//     then holds per shard verbatim;
//   * eviction is node-global: shards share an atomic byte counter and a monotonically
//     increasing touch tick, and the frontend evicts from whichever shard holds the globally
//     least-recently-used tail, preserving the monolithic server's LRU behavior;
//   * the staleness sweep fires from any one shard's op counter but sweeps all shards, so
//     garbage in cold shards is still collected when traffic is skewed.
#ifndef SRC_CACHE_CACHE_SHARD_H_
#define SRC_CACHE_CACHE_SHARD_H_

#include <atomic>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/bus/invalidation.h"
#include "src/cache/cache_types.h"
#include "src/cache/flat_table.h"
#include "src/cache/function_advisor.h"
#include "src/cache/function_interner.h"
#include "src/cache/tag_interner.h"
#include "src/util/clock.h"
#include "src/util/ebr.h"
#include "src/util/hash.h"
#include "src/util/serde.h"
#include "src/util/shared_mutex.h"
#include "src/util/status.h"

namespace txcache {

// What a capacity eviction freed. The frontend uses it to maintain the node-level atomic
// eviction stats and to fold the entry's realized benefit-per-byte (hits * fill_cost / bytes
// over its lifetime) back into the owning function's admission profile.
struct EvictedVersion {
  size_t bytes = 0;
  uint64_t fill_cost_us = 0;
  uint64_t hits = 0;
  std::string function;  // CacheKeyFunction of the evicted key (interned once, at insert)
};

// Cheapest victim this shard could offer right now; the frontend compares candidates across
// shards to reconstruct a node-global eviction order (stale-first, then lowest score).
struct EvictionCandidate {
  bool has_stale = false;
  uint64_t stale_seq = 0;  // node-global ordinal assigned when the version went stale
  bool has_scored = false;
  double score = 0.0;
  uint64_t tick = 0;  // tie-break: older touch evicted first
};

// One victim of a hypothetical eviction, as previewed by the size-aware admission gate. The
// frontend pools stale previews (their relative order cannot change the sum of zero-benefit
// bytes), then merges scored previews cheapest-score first, summing `benefit_us` until the
// candidate fill's bytes are covered — the fill's displacement cost.
struct VictimPreview {
  bool stale = false;      // listed stale (closed interval or TTL-demoted): evicted first
  double score = 0.0;      // eviction order among scored victims
  size_t bytes = 0;
  // Remaining benefit: max(0, score - aging floor) * bytes for scored victims — the µs of
  // recompute the entry is still expected to save beyond what the policy would already evict
  // at. Stale-listed victims are worthless by definition (they can only serve pinned old
  // snapshots), so displacing them is free.
  double benefit_us = 0.0;
};

class CacheShard {
 public:
  // `interner` is the node-wide function-name interner (shared across shards so ids agree);
  // `tag_interner` dedups identical invalidation-tag sets across versions node-wide. Both
  // must outlive the shard.
  CacheShard(const Clock* clock, const CacheOptions& options,
             std::atomic<size_t>* global_bytes, std::atomic<uint64_t>* touch_ticker,
             std::atomic<double>* aging_floor, FunctionAdvisor* advisor,
             FunctionInterner* interner, TagSetInterner* tag_interner);
  ~CacheShard();

  // Byte cost a version created from `req` would be charged against the node budget. Public so
  // the frontend's admission gate and the tests price entries with the same formula.
  static size_t EstimateBytes(const InsertRequest& req);

  CacheShard(const CacheShard&) = delete;
  CacheShard& operator=(const CacheShard&) = delete;

  // `key_hash` is the request's carried (or frontend-computed) Fnv1a key hash; the shard
  // reuses it for the flat-table probe, so a hit never rehashes nor materializes a key copy.
  LookupResponse Lookup(const LookupRequest& req, uint64_t key_hash);
  // Answers req.lookups[i] for every i in `indices` inside a single EBR critical region,
  // writing each result to out->responses[i]. Byte-identical to issuing the lookups one at a
  // time.
  void LookupBatch(const MultiLookupRequest& req, const std::vector<uint32_t>& indices,
                   MultiLookupResponse* out);
  // `function` is CacheKeyFunction(req.key), parsed once by the frontend (empty under plain
  // LRU, which never uses it); `hints` is the function's current advisory snapshot, copied
  // into the stored version's resident block so the zero-copy hit path can serve it without a
  // map probe. `*sweep_due` is set when this shard's mutating-op counter crossed the sweep
  // interval; the caller (frontend) then sweeps all shards without any shard lock held.
  Status Insert(const InsertRequest& req, uint64_t key_hash, std::string function,
                std::shared_ptr<const AdvisoryHints> hints, bool* sweep_due);

  // Applies one invalidation message. The caller (the node's sequencer sink) guarantees
  // strict seqno order and no concurrent invocations.
  void ApplyInvalidation(const InvalidationMessage& msg, bool* sweep_due);

  // Per-function learned-lifetime snapshot, shared across one sweep pass.
  using LifetimeSnapshot = std::unordered_map<std::string, FunctionAdvisor::LifetimeEntry>;

  // Eager eviction of versions invalidated longer ago than any staleness limit accepts,
  // followed by the TTL-expiry demotion pass. `learned` is the advisor snapshot the caller
  // took once for the whole all-shards sweep (null: this shard snapshots for itself —
  // standalone callers, tests).
  void SweepStale(const LifetimeSnapshot* learned = nullptr);

  // Node-global eviction support. Under kLru the frontend compares OldestTick across shards
  // and evicts from the globally least-recently-used tail; under kCostAware it compares
  // PeekVictim candidates (stale-first, then lowest benefit-per-byte score). EvictOne evicts
  // this shard's cheapest victim per the configured policy and reports what was freed. The
  // peeks read under the shared lock against possibly-undrained touches, so the cross-shard
  // choice is best-effort; EvictOne drains first, so within the chosen shard the policy
  // order is exact.
  std::optional<uint64_t> OldestTick() const;
  std::optional<EvictionCandidate> PeekVictim() const;
  std::optional<EvictedVersion> EvictOne();
  // Size-aware admission support: the victims this shard would offer, in its own eviction
  // order (stale list front-to-back, then score index ascending), until their summed bytes
  // reach `bytes_needed` or the shard runs out. Shared-lock read against possibly-undrained
  // touches — best-effort, like PeekVictim; the admission decision it feeds is a policy
  // heuristic, never a correctness question.
  std::vector<VictimPreview> PreviewVictims(size_t bytes_needed) const;

  // Per-function hit counters (attributed at touch-buffer drain time from the interned
  // function id stored on each version), merged by the frontend into FunctionStats(). Drains
  // pending touches so the profile is current as of this call.
  std::unordered_map<std::string, uint64_t> FunctionHits();

  // Write-intent ownership (optimistic read-write transactions). AcquireIntent is
  // check-and-acquire under the exclusive lock: Ok when the key was free or already held by
  // this token (idempotent), kConflict (with the holder's token) when another transaction
  // owns it. Acquisition stamps the key's still-valid version's ownership bit so lock-free
  // readers see the intent without a map probe; Insert re-stamps a fresh version while its
  // key's intent is held. ReleaseIntent is idempotent and only honors the owning token.
  // ClearIntents drops every intent wholesale (flush/crash/rejoin — advisory state, see
  // IntentRequest) and returns how many were dropped.
  IntentResponse AcquireIntent(const IntentRequest& req, uint64_t key_hash);
  void ReleaseIntent(const IntentRequest& req, uint64_t key_hash);
  size_t ClearIntents();

  void Flush();  // drops cached data; keeps invalidation history and stream position

  // Snapshot/rejoin support. ExportEntries serializes this shard's resident versions (same
  // record format the monolithic server used); AdoptStreamPosition fast-forwards the shard's
  // view of the last applied invalidation timestamp (snapshot import, flush-rejoin). With
  // raise_history_floor the per-tag invalidation history floor is lifted to the same
  // timestamp: the shard never saw the messages in the adopted gap, so inserts computed
  // before it must be conservatively truncated rather than trusted as still valid.
  std::pair<uint64_t, std::string> ExportEntries() const;
  void AdoptStreamPosition(Timestamp last_invalidation_ts, bool raise_history_floor = false);

  // Degraded warm rejoin: closes every still-valid version at max(its known_valid_through,
  // `through`) — the data survives for reads pinned inside its proven validity window, but
  // nothing claims to be current. Used when a restored snapshot's residual stream gap cannot
  // be replayed: the entries were provably valid through the snapshot position and nothing
  // later can be vouched for. Validity only narrows, so no-stale-read holds by construction.
  void CloseAllStillValid(Timestamp through);

  // Hot-key replication support. HarvestHotHashes folds the per-stripe sketches (clearing
  // them, so each harvest reflects traffic since the last) into hash -> sampled-hit-count.
  // ExportForReplication builds replica InsertRequests for the wanted key hashes: for each
  // matching key, the newest still-valid version, with computed_at advanced to this shard's
  // last applied invalidation timestamp — the entry is provably valid through it, and a
  // replica behind that position will re-check the claim against its own replay history
  // while a replica ahead truncates it at insert time. Both are shared-lock cold paths.
  std::unordered_map<uint64_t, uint64_t> HarvestHotHashes();
  std::vector<InsertRequest> ExportForReplication(const std::vector<uint64_t>& hashes) const;

  CacheStats stats() const;  // this shard's partial counters
  void ResetStats();
  size_t version_count() const;
  size_t key_count() const;
  Timestamp last_invalidation_ts() const;

  // Lifetime count of exclusive acquisitions of this shard's lock. The read fast path's "a
  // hit takes no exclusive lock" claim is asserted against this by tests and benchmarks.
  uint64_t exclusive_lock_acquisitions() const { return mu_.exclusive_acquisitions(); }
  uint64_t shared_lock_acquisitions() const { return mu_.shared_acquisitions(); }
  // True when any touch-buffer stripe has overflowed since the last drain (diagnostic; tests
  // use it to force-cover the overflow repair path).
  bool touch_buffer_overflowed() const {
    return touch_overflow_.load(std::memory_order_relaxed);
  }

 private:
  struct KeySlot;

  // The bytes a hit hands out, bundled so one control block covers the value, the tags and
  // the advisory hints: a zero-copy response carries three aliasing shared_ptrs but bumps a
  // single refcount. The block is immutable from publication to destruction — truncation
  // narrows the version's validity, never the payload — which is what keeps held aliases
  // bitwise-stable across truncate/evict/flush and lets lock-free readers copy `block`
  // concurrently. The hints are a value copy of the function's advisory snapshot at insert
  // time (the contract has always allowed hints to lag; fresh ones flow via InsertResponse).
  struct ResidentBlock {
    std::string value;
    // Interned via TagSetInterner: versions carrying identical tag sets alias one shared
    // allocation (never null — the empty set is a singleton). The hit path hands out an
    // alias of the *block* pointing at this vector, so a hit still bumps exactly one
    // refcount; the interned set lives as long as any block referencing it.
    std::shared_ptr<const std::vector<InvalidationTag>> tags;
    AdvisoryHints hints{};
    bool has_hints = false;
  };

  struct Version {
    // Immutable after publication (a reader acquires the version array that exposes them).
    Timestamp lower = kTimestampZero;
    Timestamp known_valid_through = kTimestampZero;  // max(lower, computed_at)
    std::shared_ptr<const ResidentBlock> block;      // destroyed only with the version (EBR)
    size_t bytes = 0;
    uint64_t fill_cost_us = 0;
    uint32_t fn_id = 0;       // interned CacheKeyFunction; 0 = none
    KeySlot* owner = nullptr; // the slot whose array publishes this version
    WallClock inserted_wallclock = 0;  // TTL learning: residency start

    // Reader-visible mutable state. Truncation stores `upper` (relaxed) and THEN
    // `still_valid = false` (release); a reader that loads still_valid == false (acquire)
    // therefore sees the final upper. While still_valid is true the effective upper is
    // derived from known_valid_through and the reader's last-invalidation snapshot instead.
    std::atomic<Timestamp> upper{kTimestampInfinity};
    std::atomic<bool> still_valid{false};
    std::atomic<uint64_t> touch_tick{0};  // node-global LRU ordinal of the last touch
    std::atomic<uint64_t> hit_count{0};
    // Write-intent ownership bit (ClusterSTM-style): the token of the transaction that
    // acquired a write intent on this version's key, 0 when free. Stamped/cleared under the
    // exclusive lock, read lock-free by the zero-copy hit path (relaxed — the bit is advisory
    // early-conflict detection; serializability comes from commit-time validation, so a torn
    // or lagging read can only cost an extra abort or a later-detected conflict).
    std::atomic<uint64_t> intent_owner{0};

    // Exclusive-lock-only state.
    WallClock invalidated_wallclock = 0;  // set when truncated
    std::list<Version*>::iterator lru_it;  // position in lru_

    // Cost-aware policy state. A resident version is in exactly one of the two structures:
    // still-valid versions carry a GreedyDual-style score (aging floor + fill_cost/bytes,
    // refreshed at drain time for every hit batch) in score_index_; closed-interval versions
    // — plus still-valid versions demoted for outliving their function's learned lifetime
    // (ttl_demoted) — sit in stale_lru_ in the order they went stale and are evicted first.
    uint64_t attributed_hits = 0;  // hit_count already folded into fn_hits_ (drain-side)
    double score = 0.0;
    std::multimap<double, Version*>::iterator score_it;  // valid iff in_score_index
    std::list<Version*>::iterator stale_it;              // valid iff in_stale_list
    bool in_score_index = false;
    bool in_stale_list = false;
    bool ttl_demoted = false;  // in stale_lru_ while still_valid (learned-TTL expiry)
    uint64_t stale_seq = 0;  // node-global ordinal taken when listed stale
  };

  // Immutable snapshot of a key's version chain, sorted by `lower`, intervals pairwise
  // disjoint. Writers publish a fresh array on every insert/remove and retire the old one;
  // readers walk whichever snapshot they acquired.
  struct VersionArray {
    std::vector<Version*> items;
  };

  // One key's flat-table record. Created by the first insert for the key and kept for the
  // shard's lifetime (its existence is what distinguishes a capacity/staleness miss from a
  // compulsory one — the old map kept empty KeyEntries for the same reason); retired only by
  // Flush and destruction. `versions` may be null (all versions removed).
  struct KeySlot {
    uint64_t hash = 0;  // Fnv1a(key); field required by FlatHashTable
    std::string key;
    std::atomic<VersionArray*> versions{nullptr};
  };

  // Per-thread-stripe touch queues. Producers (hits) hold no lock: they claim a slot in their
  // own stripe with an atomic ticket and store the version pointer. The consumer
  // (DrainTouchesLocked, exclusive lock held) is NOT quiesced against producers — a straggler
  // may publish into a stripe mid-drain — so the drain treats slot contents as hints: every
  // drained pointer is validated against the shard's live-version set, and lost or duplicate
  // touches are self-correcting (recency truth lives in the per-version ticks; the overflow
  // repair re-sorts from them).
  class StripedTouchBuffer {
   public:
    // Each stripe gets the full per-drain capacity, so single-threaded behavior (and the
    // overflow tests built on tiny capacities) is identical to the old single buffer.
    StripedTouchBuffer(size_t stripes, size_t capacity)
        : stripe_count_(stripes < 1 ? 1 : stripes),
          capacity_(capacity < 1 ? 1 : capacity),
          stripes_(std::make_unique<Stripe[]>(stripe_count_)) {
      for (size_t s = 0; s < stripe_count_; ++s) {
        stripes_[s].slots = std::make_unique<std::atomic<Version*>[]>(capacity_);
      }
    }

    // Returns false when the stripe is full (the ticket is NOT handed back: a concurrent
    // Reset could otherwise underflow the counter; unclaimed growth past capacity is
    // harmless and clears at the next drain).
    bool Record(Version* v, size_t stripe) {
      Stripe& st = stripes_[stripe % stripe_count_];
      const uint64_t ticket = st.tickets.fetch_add(1, std::memory_order_relaxed);
      if (ticket >= capacity_) {
        return false;
      }
      st.slots[ticket].store(v, std::memory_order_release);
      return true;
    }

    size_t stripe_count() const { return stripe_count_; }
    size_t pending(size_t s) const {
      const uint64_t n = stripes_[s].tickets.load(std::memory_order_acquire);
      return n < capacity_ ? static_cast<size_t>(n) : capacity_;
    }
    Version* slot(size_t s, size_t i) const {
      return stripes_[s].slots[i].load(std::memory_order_acquire);
    }
    void Reset() {
      for (size_t s = 0; s < stripe_count_; ++s) {
        stripes_[s].tickets.store(0, std::memory_order_relaxed);
      }
    }

   private:
    struct alignas(64) Stripe {
      std::atomic<uint64_t> tickets{0};
      std::unique_ptr<std::atomic<Version*>[]> slots;
    };

    const size_t stripe_count_;
    const size_t capacity_;
    std::unique_ptr<Stripe[]> stripes_;
  };

  // Per-thread-stripe lookup counters: the hit path bumps only its own stripe's cache line;
  // stats() folds the stripes under the shared lock.
  //
  // The stripe also carries a tiny space-saving sketch of the hottest key hashes seen by its
  // threads, fed by every hot_key_sample_interval-th hit (one extra relaxed counter on the
  // unsampled hits). All sketch fields are racy-by-design approximations — hot-key harvesting
  // is a replication heuristic, never a correctness input — so plain relaxed atomics suffice.
  struct HotSample {
    std::atomic<uint64_t> hash{0};  // 0 = empty slot (Fnv1a/Mix64 of a real key is never 0)
    std::atomic<uint32_t> count{0};
  };
  static constexpr size_t kHotSlotsPerStripe = 8;
  struct alignas(64) LookupStatsStripe {
    std::atomic<uint64_t> lookups{0};
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> miss_compulsory{0};
    std::atomic<uint64_t> miss_staleness{0};
    std::atomic<uint64_t> miss_capacity{0};
    std::atomic<uint64_t> miss_consistency{0};
    std::atomic<uint64_t> sample_ticker{0};
    HotSample hot[kHotSlotsPerStripe];
  };

  // Mutating *Locked helpers assume the EXCLUSIVE side of mu_ is held. MatchVersions and
  // EffectiveUpper are the shared matching core: lock-free readers call them inside an EBR
  // critical region with `last_ts` snapshotted ONCE before walking (so a racing truncation
  // can only make the claimed upper more conservative); exclusive-side callers pass the
  // current value.
  Version* MatchVersions(const LookupRequest& req, uint64_t key_hash, Timestamp last_ts,
                         LookupResponse* resp) const;
  static Timestamp EffectiveUpper(const Version& v, Timestamp last_ts);
  void CountMiss(MissKind kind, LookupStatsStripe* st);
  // Space-saving update of the stripe's hot-key sketch (relaxed, racy-by-design).
  static void RecordHotSample(LookupStatsStripe& st, uint64_t key_hash);
  LookupResponse LookupRead(const LookupRequest& req, uint64_t key_hash);  // EBR, no lock
  LookupResponse LookupExclusive(const LookupRequest& req, uint64_t key_hash);
  void TruncateLocked(Version* v, Timestamp ts, WallClock wallclock);
  // Stores `token` into the ownership bit of every version published for `slot` (0 clears).
  void StampIntentLocked(KeySlot* slot, uint64_t token);
  void RegisterTagsLocked(Version* v);
  void UnregisterTagsLocked(Version* v);
  void RemoveVersionLocked(Version* v);
  // Applies every deferred hit: LRU front-moves in touch order, score refreshes, and
  // per-function hit attribution. MUST run at the top of any exclusive section that may
  // remove a version; records pointing outside live_ (removed since recording, or a
  // straggler's torn slot) are discarded unread.
  void DrainTouchesLocked();
  void SweepStaleLocked();
  // TTL-expiry pass (cost-aware only): demotes still-valid versions that outlived
  // slack x their function's learned lifetime from the score index to the stale list.
  // Validity is untouched — this is an eviction preference, so the no-resurrect/no-widen
  // property holds trivially across demotions.
  void DemoteTtlExpiredLocked(const LifetimeSnapshot& learned);
  void RecordHistoryLocked(const InvalidationMessage& msg);
  // Earliest invalidation affecting `tags` with timestamp > after; kTimestampInfinity if none.
  Timestamp EarliestInvalidationAfterLocked(const std::vector<InvalidationTag>& tags,
                                            Timestamp after) const;
  bool CountOpLocked();  // bumps the mutating-op counter; true when a sweep is due
  bool cost_aware() const { return options_.policy == EvictionPolicy::kCostAware; }
  void AddToScoreIndexLocked(Version* v);
  void AddToStaleListLocked(Version* v);
  void DetachPolicyStateLocked(Version* v);
  void AttributeHitsLocked(Version* v);
  EvictedVersion MakeEvictedLocked(const Version& v) const;
  // Republishes `owner`'s version array without `v` and retires the old array + the version.
  void UnpublishVersionLocked(Version* v);
  size_t StripeIndex() const;  // this thread's stripe (stats + touch buffer)

  const Clock* clock_;
  const CacheOptions options_;
  std::atomic<size_t>* const global_bytes_;    // shared across the node's shards
  std::atomic<uint64_t>* const touch_ticker_;  // shared monotone LRU clock
  std::atomic<double>* const aging_floor_;     // shared GreedyDual aging value (max evicted score)
  FunctionAdvisor* const advisor_;             // node-global TTL learning + hint snapshots
  FunctionInterner* const interner_;           // node-global function-name interning
  TagSetInterner* const tag_interner_;         // node-global tag-set deduplication
  EbrDomain* const domain_;                    // process-global reclamation domain

  // Writers (insert, invalidation, sweep, eviction, flush, reset) take the exclusive side;
  // the cold read-only accessors (PeekVictim, OldestTick, stats, ExportEntries, counts) take
  // the shared side. Zero-copy lookups take NEITHER — they run under EBR. The instrumentation
  // still backs the "a hit acquires no exclusive lock" acceptance test.
  mutable InstrumentedSharedMutex mu_;
  FlatHashTable<KeySlot> table_;
  std::list<Version*> lru_;  // front = most recently used within this shard
  // Cost-aware structures (maintained only under EvictionPolicy::kCostAware).
  std::multimap<double, Version*> score_index_;  // still-valid versions by benefit score
  std::list<Version*> stale_lru_;                // closed-interval versions, oldest-stale first
  std::vector<uint64_t> fn_hits_;                // per-function hit counters, by interned id
  // Every resident version. The drain's membership oracle: a touch record whose pointer is
  // not in here was removed (or never completed) since it was recorded and must not be
  // dereferenced. Maintained exclusively alongside lru_.
  std::unordered_set<Version*> live_;
  size_t version_count_ = 0;

  // Deferred hit maintenance (see class comment). touch_overflow_ marks that at least one
  // hit could not be recorded since the last drain; the drain then repairs the full LRU
  // order from the per-version ticks instead of trusting the (incomplete) queues.
  const size_t stripe_count_;
  StripedTouchBuffer touch_buffer_;
  std::atomic<bool> touch_overflow_{false};
  std::vector<Version*> drain_scratch_;  // reused across drains; exclusive-lock-only
  std::unique_ptr<LookupStatsStripe[]> lookup_stats_;

  // Still-valid version registry: concrete tag -> versions carrying it; table -> versions
  // carrying any tag of that table (serves wildcard invalidation messages); table -> versions
  // holding a wildcard tag on that table (invalidated by any message touching the table).
  std::unordered_map<InvalidationTag, std::unordered_set<Version*>, TagHasher> tag_index_;
  std::unordered_map<std::string, std::unordered_set<Version*>> table_index_;
  std::unordered_map<std::string, std::unordered_set<Version*>> wildcard_holders_;

  // Timestamp of the last invalidation fanned out to this shard. Written under the exclusive
  // lock AFTER the message's truncations land (release); a lock-free reader snapshots it
  // (acquire) once per lookup BEFORE walking versions, so a still-valid observation can only
  // pair with an equal-or-older snapshot — the claimed upper bound is never wider than what
  // a lock-holding reader would have computed. Mid-fan-out lag only narrows claims.
  std::atomic<Timestamp> last_invalidation_ts_{kTimestampZero};

  // Recent invalidation history for insert-time replay: per concrete tag, per table (wildcard
  // messages), and per table (any message touching the table). Each shard keeps the full
  // history because an insert carrying any tag can hash to any shard.
  std::unordered_map<InvalidationTag, std::vector<Timestamp>, TagHasher> tag_history_;
  std::unordered_map<std::string, std::vector<Timestamp>> table_wildcard_history_;
  std::unordered_map<std::string, std::vector<Timestamp>> table_any_history_;
  Timestamp history_floor_ = kTimestampZero;  // history below this has been pruned

  // Write intents held on this shard's keys: key -> owner token. Exclusive-lock-only; the
  // per-version ownership bits mirror it for lock-free readers. Keyed by the full key (not
  // the hash) so a hash collision can never make two keys share an intent.
  std::unordered_map<std::string, uint64_t> intents_;

  uint64_t ops_since_sweep_ = 0;
  CacheStats stats_;
};

}  // namespace txcache

#endif  // SRC_CACHE_CACHE_SHARD_H_
