// Node-wide cacheable-function name interning.
//
// The hit path attributes hits to the generating function (per-function profiles drive the
// learned-TTL and admission machinery). Carrying the function *name* through touch records
// and per-shard counters put a std::string — an allocation plus a deep compare — on the hot
// path. Instead, CacheServer owns one interner; shards store a dense uint32 id in each
// Version and attribute hits into a plain vector indexed by id. Names are resolved back only
// on the cold paths (FunctionHits(), advisor observations, stats export).
//
// Id 0 is reserved for "no function". The table is append-only and bounded by `max_ids`
// (mirroring CacheOptions::max_function_profiles): once full, unseen names intern to 0 and
// simply go unattributed, matching the profile table's own cap. The leaf mutex is taken on
// Insert (intern) and on name resolution — never on a hit.
#ifndef SRC_CACHE_FUNCTION_INTERNER_H_
#define SRC_CACHE_FUNCTION_INTERNER_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace txcache {

class FunctionInterner {
 public:
  explicit FunctionInterner(size_t max_ids = 4096) : max_ids_(max_ids) {
    names_.emplace_back();  // id 0: the empty / unattributed function
  }

  // Returns the stable id for `name`, assigning the next dense id on first sight. Empty names
  // and overflow beyond max_ids intern to 0.
  uint32_t Intern(const std::string& name) {
    if (name.empty()) {
      return 0;
    }
    std::lock_guard<std::mutex> lock(mu_);
    auto it = ids_.find(name);
    if (it != ids_.end()) {
      return it->second;
    }
    if (names_.size() > max_ids_) {
      return 0;
    }
    const uint32_t id = static_cast<uint32_t>(names_.size());
    names_.push_back(name);
    ids_.emplace(name, id);
    return id;
  }

  // Name for an id previously returned by Intern; empty string for 0 or out-of-range.
  std::string Name(uint32_t id) const {
    std::lock_guard<std::mutex> lock(mu_);
    if (id >= names_.size()) {
      return std::string();
    }
    return names_[id];
  }

  // Ids assigned so far, including the reserved 0 (so valid ids are [0, size())). Shards use
  // this to size their per-id counters.
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return names_.size();
  }

 private:
  const size_t max_ids_;
  mutable std::mutex mu_;
  std::vector<std::string> names_;
  std::unordered_map<std::string, uint32_t> ids_;
};

}  // namespace txcache

#endif  // SRC_CACHE_FUNCTION_INTERNER_H_
