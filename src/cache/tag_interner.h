// Node-wide invalidation-tag-set interning.
//
// Successive versions of the same cache entry — and frequently entries produced by the same
// query template over different bind values — carry byte-identical tag sets. Before
// interning, every insert copied the request's tag vector into its ResidentBlock, so a
// tag-heavy workload paid (tags × versions) resident bytes and allocations. The interner
// extends the function_interner.h idea to whole tag sets: CacheServer owns one
// TagSetInterner, inserts exchange their tag vector for a shared immutable
// shared_ptr<const vector<InvalidationTag>>, and identical sets alias a single allocation.
//
// Unlike FunctionInterner, entries are NOT append-only — a tag set must die when the last
// version referencing it is evicted, or the interner would pin every set ever seen. The map
// therefore holds weak_ptrs keyed by a 64-bit FNV-1a of the set's contents (buckets are
// vectors to disambiguate hash collisions by deep compare); expired entries are pruned
// lazily whenever their bucket is revisited and by the occasional full sweep.
//
// Thread safety: a leaf mutex guards the map. Intern runs on the insert path (exclusive
// shard lock already held — the interner lock nests strictly inside and is held only for map
// operations). The returned shared_ptrs are immutable, so readers never touch the interner:
// the zero-copy hit path hands out aliases of the ResidentBlock exactly as before.
#ifndef SRC_CACHE_TAG_INTERNER_H_
#define SRC_CACHE_TAG_INTERNER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/bus/invalidation.h"
#include "src/util/hash.h"

namespace txcache {

class TagSetInterner {
 public:
  using TagSet = std::vector<InvalidationTag>;

  // Returns a shared immutable copy of `tags`, aliasing a previously interned set when one
  // with identical contents is still alive. The empty set maps to a process-wide singleton.
  // Never returns null.
  std::shared_ptr<const TagSet> Intern(TagSet tags) {
    if (tags.empty()) {
      return EmptySet();
    }
    const uint64_t h = HashTagSet(tags);
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sets_.find(h);
    if (it != sets_.end()) {
      auto& bucket = it->second;
      for (size_t i = 0; i < bucket.size();) {
        std::shared_ptr<const TagSet> live = bucket[i].lock();
        if (live == nullptr) {
          bucket[i] = std::move(bucket.back());  // lazy prune of a dead set
          bucket.pop_back();
          continue;
        }
        if (*live == tags) {
          ++dedup_hits_;
          return live;
        }
        ++i;  // genuine 64-bit collision: keep looking
      }
    }
    auto fresh = std::make_shared<const TagSet>(std::move(tags));
    sets_[h].push_back(fresh);
    if (++inserts_since_sweep_ >= kSweepInterval) {
      inserts_since_sweep_ = 0;
      SweepLocked();
    }
    return fresh;
  }

  // Distinct tag sets currently tracked (live + not-yet-pruned dead). Diagnostic.
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    size_t n = 0;
    for (const auto& [h, bucket] : sets_) {
      n += bucket.size();
    }
    return n;
  }

  // Interns answered by an already-live identical set.
  uint64_t dedup_hits() const {
    std::lock_guard<std::mutex> lock(mu_);
    return dedup_hits_;
  }

  static uint64_t HashTagSet(const TagSet& tags) {
    uint64_t h = kFnvOffsetBasis;
    for (const InvalidationTag& t : tags) {
      h = Fnv1a(t.table, h);
      h = Fnv1a({"\x1f", 1}, h);  // field separator: ("ab","c") must not equal ("a","bc")
      h = Fnv1a(t.index, h);
      h = Fnv1a({"\x1f", 1}, h);
      h = Fnv1a(t.key, h);
      h = Fnv1a(t.wildcard ? std::string_view("\x1fw") : std::string_view("\x1f."), h);
    }
    return h;
  }

 private:
  static constexpr uint64_t kSweepInterval = 1024;

  static const std::shared_ptr<const TagSet>& EmptySet() {
    static const std::shared_ptr<const TagSet> kEmpty = std::make_shared<const TagSet>();
    return kEmpty;
  }

  // Drops every expired weak_ptr so churny workloads (sets die, new distinct sets arrive)
  // can't grow the map without bound between bucket revisits.
  void SweepLocked() {
    for (auto it = sets_.begin(); it != sets_.end();) {
      auto& bucket = it->second;
      for (size_t i = 0; i < bucket.size();) {
        if (bucket[i].expired()) {
          bucket[i] = std::move(bucket.back());
          bucket.pop_back();
        } else {
          ++i;
        }
      }
      it = bucket.empty() ? sets_.erase(it) : std::next(it);
    }
  }

  mutable std::mutex mu_;
  std::unordered_map<uint64_t, std::vector<std::weak_ptr<const TagSet>>> sets_;
  uint64_t dedup_hits_ = 0;
  uint64_t inserts_since_sweep_ = 0;
};

}  // namespace txcache

#endif  // SRC_CACHE_TAG_INTERNER_H_
