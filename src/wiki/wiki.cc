#include "src/wiki/wiki.h"

#include <algorithm>
#include <sstream>

namespace txcache::wiki {

namespace {

Column Int(const char* name) { return Column{name, ValueType::kInt, false}; }
Column Str(const char* name) { return Column{name, ValueType::kString, false}; }

}  // namespace

Status CreateWikiSchema(Database* db) {
  Status st = db->CreateTable(
      TableSchema{kArticles, {Int("id"), Str("title"), Int("latest_rev")}});
  if (!st.ok()) {
    return st;
  }
  st = db->CreateIndex(IndexSchema{kArticlesPk, kArticles, {ArticlesCol::kId}, true});
  if (!st.ok()) {
    return st;
  }
  st = db->CreateIndex(IndexSchema{kArticlesByTitle, kArticles, {ArticlesCol::kTitle}, true});
  if (!st.ok()) {
    return st;
  }
  st = db->CreateTable(TableSchema{
      kRevisions,
      {Int("id"), Int("article_id"), Int("editor"), Int("timestamp"), Str("body"),
       Str("comment")}});
  if (!st.ok()) {
    return st;
  }
  st = db->CreateIndex(IndexSchema{kRevisionsPk, kRevisions, {RevisionsCol::kId}, true});
  if (!st.ok()) {
    return st;
  }
  st = db->CreateIndex(
      IndexSchema{kRevisionsByArticle, kRevisions, {RevisionsCol::kArticleId}, false});
  if (!st.ok()) {
    return st;
  }
  st = db->CreateTable(TableSchema{kUsers, {Int("id"), Str("name"), Int("edit_count")}});
  if (!st.ok()) {
    return st;
  }
  st = db->CreateIndex(IndexSchema{kUsersPk, kUsers, {UsersCol::kId}, true});
  if (!st.ok()) {
    return st;
  }
  st = db->CreateTable(TableSchema{kMessages, {Str("key"), Str("text")}});
  if (!st.ok()) {
    return st;
  }
  st = db->CreateIndex(IndexSchema{kMessagesPk, kMessages, {MessagesCol::kKey}, true});
  if (!st.ok()) {
    return st;
  }
  st = db->CreateTable(
      TableSchema{kWatchlist, {Int("user_id"), Int("article_id"), Int("added_at")}});
  if (!st.ok()) {
    return st;
  }
  return db->CreateIndex(
      IndexSchema{kWatchlistByUser, kWatchlist, {WatchlistCol::kUserId}, false});
}

WikiApp::WikiApp(TxCacheClient* client, const Clock* clock) : client_(client), clock_(clock) {
  render_article = client_->MakeCacheable<RenderedArticle, std::string>(
      "wiki.render", [this](const std::string& title) { return RenderArticleImpl(title); });
  user_card = client_->MakeCacheable<UserCard, int64_t>(
      "wiki.user_card", [this](int64_t id) { return UserCardImpl(id); });
  article_history = client_->MakeCacheable<std::vector<HistoryEntry>, std::string, int64_t>(
      "wiki.history",
      [this](const std::string& title, int64_t limit) { return ArticleHistoryImpl(title, limit); });
  watchlist = client_->MakeCacheable<std::vector<std::string>, int64_t, int64_t>(
      "wiki.watchlist",
      [this](int64_t user, int64_t days) { return WatchlistImpl(user, days); });
  localization = client_->MakeCacheable<std::vector<std::string>, std::string>(
      "wiki.messages", [this](const std::string& prefix) { return LocalizationImpl(prefix); });
}

Status WikiApp::EnableDerivedTags(Database* db) {
  if (db == nullptr) {
    return Status::InvalidArgument("EnableDerivedTags needs the database for the planner");
  }
  sql_ = std::make_unique<sql::SqlSession>(client_, db);
  sql_->set_tag_mode(sql::SqlSession::TagMode::kDerived);
  return Status::Ok();
}

std::vector<Row> WikiApp::FetchRows(const std::string& sql_text,
                                    const std::function<Query()>& handwritten) {
  if (sql_ != nullptr) {
    auto r = sql_->Execute(sql_text);
    return r.ok() ? std::move(r.value().rows) : std::vector<Row>{};
  }
  auto r = client_->ExecuteQuery(handwritten());
  return r.ok() ? std::move(r.value().rows) : std::vector<Row>{};
}

RenderedArticle WikiApp::RenderArticleImpl(const std::string& title) {
  RenderedArticle page;
  page.title = title;
  std::vector<Row> articles = FetchRows(
      "SELECT * FROM wiki_articles WHERE title = " + sql::QuoteSqlString(title), [&] {
        return Query::From(AccessPath::IndexEq(kArticles, kArticlesByTitle, Row{Value(title)}));
      });
  if (articles.empty()) {
    page.html = "<h1>" + title + "</h1><p>(no such page)</p>";
    return page;
  }
  const int64_t rev_id = articles[0][ArticlesCol::kLatestRev].AsInt();
  std::vector<Row> revisions = FetchRows(
      "SELECT * FROM wiki_revisions WHERE id = " + std::to_string(rev_id), [&] {
        return Query::From(AccessPath::IndexEq(kRevisions, kRevisionsPk, Row{Value(rev_id)}));
      });
  if (revisions.empty()) {
    page.html = "<h1>" + title + "</h1><p>(revision missing)</p>";
    return page;
  }
  const Row& r = revisions[0];
  UserCard editor = user_card(r[RevisionsCol::kEditor].AsInt());  // nested cacheable call
  std::ostringstream html;
  html << "<h1>" << title << "</h1><div>" << r[RevisionsCol::kBody].AsString()
       << "</div><footer>rev " << rev_id << " by " << editor.name << " (" << editor.edit_count
       << " edits)</footer>";
  page.html = html.str();
  page.revision = rev_id;
  page.found = true;
  return page;
}

UserCard WikiApp::UserCardImpl(int64_t id) {
  UserCard card;
  std::vector<Row> rows = FetchRows(
      "SELECT * FROM wiki_users WHERE id = " + std::to_string(id), [&] {
        return Query::From(AccessPath::IndexEq(kUsers, kUsersPk, Row{Value(id)}));
      });
  if (rows.empty()) {
    return card;
  }
  card.id = id;
  card.name = rows[0][UsersCol::kName].AsString();
  card.edit_count = rows[0][UsersCol::kEditCount].AsInt();
  card.found = true;
  return card;
}

std::vector<HistoryEntry> WikiApp::ArticleHistoryImpl(const std::string& title, int64_t limit) {
  std::vector<HistoryEntry> history;
  std::vector<Row> articles = FetchRows(
      "SELECT id FROM wiki_articles WHERE title = " + sql::QuoteSqlString(title), [&] {
        return Query::From(AccessPath::IndexEq(kArticles, kArticlesByTitle, Row{Value(title)}))
            .Project({ArticlesCol::kId});
      });
  if (articles.empty()) {
    return history;
  }
  const int64_t article_id = articles[0][0].AsInt();
  if (sql_ != nullptr) {
    // The SQL surface is single-table, so the editor join decomposes into per-row point
    // SELECTs. Each probe carries the same concrete tag the join executor would attach —
    // except that the executor probes every revision BEFORE the sort/limit, while this path
    // only probes the revisions it returns (fewer dependencies, still sound: unseen rows
    // cannot influence the result).
    auto revisions = sql_->Execute(
        "SELECT id, editor, timestamp, comment FROM wiki_revisions WHERE article_id = " +
        std::to_string(article_id) + " ORDER BY id DESC LIMIT " + std::to_string(limit));
    if (!revisions.ok()) {
      return history;
    }
    for (const Row& r : revisions.value().rows) {
      auto editor =
          sql_->Execute("SELECT name FROM wiki_users WHERE id = " + std::to_string(r[1].AsInt()));
      const bool found = editor.ok() && !editor.value().rows.empty();
      history.push_back(HistoryEntry{r[0].AsInt(),
                                     found ? editor.value().rows[0][0].AsString() : "",
                                     r[2].AsInt(), r[3].AsString()});
    }
    return history;
  }
  constexpr uint32_t kEditorName = uint32_t{RevisionsCol::kCount} + uint32_t{UsersCol::kName};
  auto revisions = client_->ExecuteQuery(
      Query::From(AccessPath::IndexEq(kRevisions, kRevisionsByArticle, Row{Value(article_id)}))
          .Join(JoinStep{kUsers, kUsersPk, {RevisionsCol::kEditor}, nullptr})
          .SortBy(RevisionsCol::kId, /*descending=*/true)
          .Limit(static_cast<size_t>(limit))
          .Project({RevisionsCol::kId, kEditorName, RevisionsCol::kTimestamp,
                    RevisionsCol::kComment}));
  if (revisions.ok()) {
    for (const Row& r : revisions.value().rows) {
      history.push_back(HistoryEntry{r[0].AsInt(), r[1].AsString(), r[2].AsInt(),
                                     r[3].AsString()});
    }
  }
  return history;
}

std::vector<std::string> WikiApp::WatchlistImpl(int64_t user, int64_t days) {
  // Both `user` and `days` flow into the cache key automatically (bug #7474 made these
  // collide in MediaWiki by caching under a user-only key).
  std::vector<std::string> titles;
  const int64_t cutoff = static_cast<int64_t>(clock_->Now()) - days * 86'400 * kMicrosPerSecond;
  if (sql_ != nullptr) {
    auto watched = sql_->Execute("SELECT article_id FROM wiki_watchlist WHERE user_id = " +
                                 std::to_string(user) +
                                 " AND added_at >= " + std::to_string(cutoff));
    if (!watched.ok()) {
      return titles;
    }
    for (const Row& row : watched.value().rows) {
      auto article = sql_->Execute("SELECT title FROM wiki_articles WHERE id = " +
                                   std::to_string(row[0].AsInt()));
      if (article.ok() && !article.value().rows.empty()) {
        titles.push_back(article.value().rows[0][0].AsString());
      }
    }
    std::sort(titles.begin(), titles.end());
    return titles;
  }
  constexpr uint32_t kTitleCol = uint32_t{WatchlistCol::kCount} + uint32_t{ArticlesCol::kTitle};
  auto r = client_->ExecuteQuery(
      Query::From(AccessPath::IndexEq(kWatchlist, kWatchlistByUser, Row{Value(user)}))
          .Where(PCmp(WatchlistCol::kAddedAt, CmpOp::kGe, Value(cutoff)))
          .Join(JoinStep{kArticles, kArticlesPk, {WatchlistCol::kArticleId}, nullptr})
          .SortBy(kTitleCol)
          .Project({kTitleCol}));
  if (r.ok()) {
    for (const Row& row : r.value().rows) {
      titles.push_back(row[0].AsString());
    }
  }
  return titles;
}

std::vector<std::string> WikiApp::LocalizationImpl(const std::string& prefix) {
  std::vector<std::string> messages;
  std::vector<Row> rows = FetchRows(
      "SELECT key, text FROM wiki_messages ORDER BY key", [&] {
        return Query::From(AccessPath::SeqScan(kMessages)).SortBy(MessagesCol::kKey);
      });
  for (const Row& row : rows) {
    if (row[MessagesCol::kKey].AsString().rfind(prefix, 0) == 0) {
      messages.push_back(row[MessagesCol::kText].AsString());
    }
  }
  return messages;
}

Result<int64_t> WikiApp::EditArticle(int64_t editor, const std::string& title,
                                     const std::string& body, const std::string& comment) {
  // Find or create the article row.
  auto existing = client_->ExecuteQuery(
      Query::From(AccessPath::IndexEq(kArticles, kArticlesByTitle, Row{Value(title)})));
  if (!existing.ok()) {
    return existing.status();
  }
  int64_t article_id;
  const int64_t rev_id = next_revision_id_++;
  if (existing.value().rows.empty()) {
    article_id = next_article_id_++;
    Status st = client_->Insert(kArticles, Row{Value(article_id), Value(title), Value(rev_id)});
    if (!st.ok()) {
      return st;
    }
  } else {
    article_id = existing.value().rows[0][ArticlesCol::kId].AsInt();
    auto n = client_->Update(kArticles,
                             AccessPath::IndexEq(kArticles, kArticlesPk, Row{Value(article_id)}),
                             nullptr, {{ArticlesCol::kLatestRev, Value(rev_id)}});
    if (!n.ok()) {
      return n.status();
    }
  }
  Status st = client_->Insert(
      kRevisions, Row{Value(rev_id), Value(article_id), Value(editor),
                      Value(static_cast<int64_t>(clock_->Now())), Value(body), Value(comment)});
  if (!st.ok()) {
    return st;
  }
  // The edit-count bump MediaWiki forgot to pair with an invalidation (bug #8391): here the
  // update's tags invalidate the cached USER object — and, transitively, any article render
  // that embedded it — with no application code at all.
  auto current = client_->ExecuteQuery(
      Query::From(AccessPath::IndexEq(kUsers, kUsersPk, Row{Value(editor)}))
          .Project({UsersCol::kEditCount}));
  if (!current.ok()) {
    return current.status();
  }
  if (!current.value().rows.empty()) {
    auto n = client_->Update(kUsers, AccessPath::IndexEq(kUsers, kUsersPk, Row{Value(editor)}),
                             nullptr,
                             {{UsersCol::kEditCount,
                               Value(current.value().rows[0][0].AsInt() + 1)}});
    if (!n.ok()) {
      return n.status();
    }
  }
  return rev_id;
}

Status WikiApp::RegisterUser(int64_t id, const std::string& name) {
  return client_->Insert(kUsers, Row{Value(id), Value(name), Value(int64_t{0})});
}

Status WikiApp::Watch(int64_t user, int64_t article_id) {
  return client_->Insert(kWatchlist, Row{Value(user), Value(article_id),
                                         Value(static_cast<int64_t>(clock_->Now()))});
}

Status WikiApp::SetMessage(const std::string& key, const std::string& text) {
  auto n = client_->Update(kMessages,
                           AccessPath::IndexEq(kMessages, kMessagesPk, Row{Value(key)}), nullptr,
                           {{MessagesCol::kText, Value(text)}});
  if (!n.ok()) {
    return n.status();
  }
  if (n.value() == 0) {
    return client_->Insert(kMessages, Row{Value(key), Value(text)});
  }
  return Status::Ok();
}

}  // namespace txcache::wiki
