// A MediaWiki-style application ported to TxCache following §7.2 of the paper.
//
// The port demonstrates the patterns the paper describes:
//   * cache only pure, static-izable functions (everything here reads its arguments + DB);
//   * object-granularity caching of "constructed objects" (article renders, user cards,
//     revision histories) that fold post-processing cost into the cached value;
//   * the localization cache (interface messages);
//   * staleness-tolerant read transactions (MediaWiki already tolerates replication lag of
//     1-30 s, which maps directly onto BEGIN-RO staleness limits).
//
// It also encodes the two MediaWiki bug classes the paper cites as motivation, now impossible
// by construction:
//   * bug #7474 family: a user's watchlist was cached under a key that ignored the "days"
//     parameter, so different requests collided. Here keys are derived from ALL arguments.
//   * bug #8391 family: the cached USER object carries an edit count, and invalidating it after
//     edits was forgotten. Here the dependency is tracked by the database automatically.
#ifndef SRC_WIKI_WIKI_H_
#define SRC_WIKI_WIKI_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/core/cacheable_function.h"
#include "src/core/txcache_client.h"
#include "src/sql/session.h"

namespace txcache::wiki {

// --- schema ---

struct ArticlesCol {
  enum : ColumnId { kId, kTitle, kLatestRev, kCount };
};
struct RevisionsCol {
  enum : ColumnId { kId, kArticleId, kEditor, kTimestamp, kBody, kComment, kCount };
};
struct UsersCol {
  enum : ColumnId { kId, kName, kEditCount, kCount };
};
struct MessagesCol {
  enum : ColumnId { kKey, kText, kCount };
};
struct WatchlistCol {
  enum : ColumnId { kUserId, kArticleId, kAddedAt, kCount };
};

inline constexpr const char* kArticles = "wiki_articles";
inline constexpr const char* kRevisions = "wiki_revisions";
inline constexpr const char* kUsers = "wiki_users";
inline constexpr const char* kMessages = "wiki_messages";
inline constexpr const char* kWatchlist = "wiki_watchlist";

inline constexpr const char* kArticlesPk = "wiki_articles_pk";
inline constexpr const char* kArticlesByTitle = "wiki_articles_by_title";
inline constexpr const char* kRevisionsPk = "wiki_revisions_pk";
inline constexpr const char* kRevisionsByArticle = "wiki_revisions_by_article";
inline constexpr const char* kUsersPk = "wiki_users_pk";
inline constexpr const char* kMessagesPk = "wiki_messages_pk";
inline constexpr const char* kWatchlistByUser = "wiki_watchlist_by_user";

Status CreateWikiSchema(Database* db);

// --- cached value types ---

struct RenderedArticle {
  std::string title;
  std::string html;
  int64_t revision = 0;
  bool found = false;
  template <typename F>
  void ForEachField(F&& f) {
    f(title), f(html), f(revision), f(found);
  }
  template <typename F>
  void ForEachField(F&& f) const {
    f(title), f(html), f(revision), f(found);
  }
};

struct UserCard {
  int64_t id = 0;
  std::string name;
  int64_t edit_count = 0;
  bool found = false;
  template <typename F>
  void ForEachField(F&& f) {
    f(id), f(name), f(edit_count), f(found);
  }
  template <typename F>
  void ForEachField(F&& f) const {
    f(id), f(name), f(edit_count), f(found);
  }
};

struct HistoryEntry {
  int64_t revision = 0;
  std::string editor;
  int64_t timestamp = 0;
  std::string comment;
  template <typename F>
  void ForEachField(F&& f) {
    f(revision), f(editor), f(timestamp), f(comment);
  }
  template <typename F>
  void ForEachField(F&& f) const {
    f(revision), f(editor), f(timestamp), f(comment);
  }
};

// --- the application ---

class WikiApp {
 public:
  WikiApp(TxCacheClient* client, const Clock* clock);

  // Cacheable read paths (§7.2 patterns).
  CacheableFunction<RenderedArticle, std::string> render_article;       // by title
  CacheableFunction<UserCard, int64_t> user_card;                       // the bug-#8391 object
  CacheableFunction<std::vector<HistoryEntry>, std::string, int64_t> article_history;
  CacheableFunction<std::vector<std::string>, int64_t, int64_t> watchlist;  // (user, days):
      // both arguments are in the key — the bug-#7474 collision cannot happen
  CacheableFunction<std::vector<std::string>, std::string> localization;    // message prefix

  // Write paths (BEGIN-RW transactions; invalidation is automatic).
  // Creates the article if needed; appends a revision; bumps the editor's edit count.
  Result<int64_t> EditArticle(int64_t editor, const std::string& title,
                              const std::string& body, const std::string& comment);
  Status RegisterUser(int64_t id, const std::string& name);
  Status Watch(int64_t user, int64_t article_id);
  Status SetMessage(const std::string& key, const std::string& text);

  TxCacheClient* client() { return client_; }

  // Switches every cacheable read path to automatic tag derivation: queries are issued as
  // SQL text through a derived-mode SqlSession (src/sql/tag_deriver.h), so invalidation
  // tags come from the planner — zero hand-written Query/tag specs execute on this path.
  // Index-nested-loop joins decompose into per-row point SELECTs whose probe tags match the
  // join executor's. Hand-written mode (the default) stays runnable for diffing; write
  // paths are unchanged in both modes (the engine derives write-side invalidations itself).
  Status EnableDerivedTags(Database* db);
  bool derived_tags() const { return sql_ != nullptr; }

 private:
  RenderedArticle RenderArticleImpl(const std::string& title);
  UserCard UserCardImpl(int64_t id);
  std::vector<HistoryEntry> ArticleHistoryImpl(const std::string& title, int64_t limit);
  std::vector<std::string> WatchlistImpl(int64_t user, int64_t days);
  std::vector<std::string> LocalizationImpl(const std::string& prefix);
  // Runs `sql_text` through the derived-tag session when enabled, else the hand-written
  // query (never built in derived mode). Both must produce the same row layout. Errors
  // degrade to no rows, matching the impls' existing error handling.
  std::vector<Row> FetchRows(const std::string& sql_text,
                             const std::function<Query()>& handwritten);

  TxCacheClient* client_;
  const Clock* clock_;
  std::unique_ptr<sql::SqlSession> sql_;  // non-null iff derived-tag mode
  int64_t next_article_id_ = 1;
  int64_t next_revision_id_ = 1;
};

}  // namespace txcache::wiki

#endif  // SRC_WIKI_WIKI_H_
