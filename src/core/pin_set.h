// The pin set: the set of pinned-snapshot timestamps at which the current read-only transaction
// can still be serialized, plus the special element * ("the present") until any cached data has
// been observed (paper §6.2).
//
// Invariants maintained here and checked in tests:
//   1. everything the transaction observed is valid at every timestamp in the pin set;
//   2. the pin set is never empty (NarrowTo refuses a narrowing that would empty it, which the
//      client treats as a cache miss).
#ifndef SRC_CORE_PIN_SET_H_
#define SRC_CORE_PIN_SET_H_

#include <algorithm>
#include <vector>

#include "src/pincushion/pincushion.h"
#include "src/util/interval.h"

namespace txcache {

class PinSet {
 public:
  void Reset(std::vector<PinInfo> pins, bool with_star) {
    pins_ = std::move(pins);
    std::sort(pins_.begin(), pins_.end(),
              [](const PinInfo& a, const PinInfo& b) { return a.ts < b.ts; });
    has_star_ = with_star;
  }

  void AddPin(const PinInfo& pin) {
    auto it = std::lower_bound(pins_.begin(), pins_.end(), pin.ts,
                               [](const PinInfo& a, Timestamp t) { return a.ts < t; });
    if (it == pins_.end() || it->ts != pin.ts) {
      pins_.insert(it, pin);
    }
  }

  // Lookup bounds sent to the cache server: [oldest pin, newest pin], with an unbounded upper
  // end while * is present (the transaction could still run "now").
  Timestamp BoundsLo() const { return pins_.empty() ? kTimestampZero : pins_.front().ts; }
  Timestamp BoundsHi() const {
    if (has_star_ || pins_.empty()) {
      return kTimestampInfinity;
    }
    return pins_.back().ts;
  }

  // Removes every timestamp outside `interval` and drops *. Returns false — leaving the pin
  // set unchanged — if that would empty the set (the caller treats the value as a miss, which
  // preserves Invariant 2 even in corner cases the paper's argument glosses, e.g. an entry
  // whose generating pin has since been unpinned).
  bool NarrowTo(const Interval& interval) {
    std::vector<PinInfo> kept;
    kept.reserve(pins_.size());
    for (const PinInfo& pin : pins_) {
      if (interval.Contains(pin.ts)) {
        kept.push_back(pin);
      }
    }
    if (kept.empty()) {
      return false;
    }
    pins_ = std::move(kept);
    has_star_ = false;
    return true;
  }

  bool Contains(Timestamp ts) const {
    return std::binary_search(
        pins_.begin(), pins_.end(), ts,
        [](const auto& a, const auto& b) { return Ts(a) < Ts(b); });
  }

  bool empty() const { return pins_.empty() && !has_star_; }
  bool has_pins() const { return !pins_.empty(); }
  bool has_star() const { return has_star_; }
  void DropStar() { has_star_ = false; }
  size_t pin_count() const { return pins_.size(); }
  const std::vector<PinInfo>& pins() const { return pins_; }
  const PinInfo& newest() const { return pins_.back(); }
  const PinInfo& oldest() const { return pins_.front(); }

 private:
  // Heterogeneous comparison helper for binary_search over PinInfo/Timestamp.
  static Timestamp Ts(const PinInfo& p) { return p.ts; }
  static Timestamp Ts(Timestamp t) { return t; }

  std::vector<PinInfo> pins_;  // sorted by ts
  bool has_star_ = false;
};

}  // namespace txcache

#endif  // SRC_CORE_PIN_SET_H_
