#include "src/core/txcache_client.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <thread>

namespace txcache {

TxCacheClient::TxCacheClient(Database* db, Pincushion* pincushion, CacheCluster* cache,
                             const Clock* clock, Options options)
    : db_(db), pincushion_(pincushion), cache_(cache), clock_(clock), options_(options) {
  rw_backoff_state_ = options_.rw_backoff_seed;
}

TxCacheClient::~TxCacheClient() {
  if (in_transaction()) {
    Abort();
  }
}

Status TxCacheClient::BeginRO(WallClock staleness) {
  if (in_transaction()) {
    return Status::FailedPrecondition("transaction already active");
  }
  state_ = TxnState::kReadOnly;
  staleness_ = staleness;
  chosen_ts_.reset();
  db_txn_.reset();
  frames_.clear();
  acquired_pins_.clear();
  if (options_.mode == ClientMode::kNoCache) {
    pin_set_.Reset({}, /*with_star=*/true);
  } else {
    // The pin set starts as every pinned snapshot within the staleness limit, plus * ("run in
    // the present") — §6.2.
    acquired_pins_ = pincushion_->AcquireFreshPins(staleness);
    pin_set_.Reset(acquired_pins_, /*with_star=*/true);
  }
  ++stats_.ro_txns;
  return Status::Ok();
}

Status TxCacheClient::BeginRW() {
  if (in_transaction()) {
    return Status::FailedPrecondition("transaction already active");
  }
  state_ = TxnState::kReadWrite;
  frames_.clear();
  // Read/write transactions run directly on the database, bypassing the cache (§2.2).
  db_txn_ = db_->BeginReadWrite();
  chosen_ts_.reset();
  ++stats_.rw_txns;
  return Status::Ok();
}

Status TxCacheClient::BeginRw() {
  if (in_transaction()) {
    return Status::FailedPrecondition("transaction already active");
  }
  state_ = TxnState::kOptimisticRw;
  frames_.clear();
  // track_reads: queries inside this transaction collect invalidation tags, which ReadInTx
  // and ExecuteQuery fold into the read set CommitRw validates.
  db_txn_ = db_->BeginReadWrite(/*track_reads=*/true);
  auto snap_or = db_->SnapshotOf(*db_txn_);
  rw_snapshot_ = snap_or.ok() ? snap_or.value() : db_->LatestCommitTs();
  rw_intent_token_ = *db_txn_;
  rw_read_set_.clear();
  rw_intents_.clear();
  chosen_ts_.reset();
  ++stats_.rw_txns;
  ++stats_.rw_optimistic_txns;
  return Status::Ok();
}

Result<TxCacheClient::CachedValue> TxCacheClient::ReadInTx(const std::string& key,
                                                           const std::string* function) {
  if (state_ != TxnState::kOptimisticRw) {
    return Status::FailedPrecondition("no optimistic read-write transaction");
  }
  LookupRequest req;
  req.key = key;
  req.key_hash = Fnv1a(key);  // hash-once, as on the read-only path
  // Bound to the transaction snapshot: only a version valid at exactly the snapshot can be
  // consistent with the reads the engine itself will serve this transaction.
  req.bounds_lo = rw_snapshot_;
  req.bounds_hi = rw_snapshot_;
  req.fresh_lo = rw_snapshot_;
  LookupResponse resp = cache_->Lookup(req);
  ObserveRingEpoch(resp.ring_epoch);
  ObserveHints(key, function, resp.served_by, resp.hints);
  if (resp.hit && resp.intent_owner != 0 && resp.intent_owner != rw_intent_token_) {
    // A foreign write intent covers this key: its holder is about to invalidate what we just
    // read, so a commit racing it is likely doomed. Abort early (advisory — the caller
    // retries with backoff); commit validation would catch the stale read regardless.
    ++stats_.rw_intent_conflicts;
    RecordMiss(MissKind::kConsistency);
    return Status::Conflict("cached read covered by a foreign write intent");
  }
  if (!resp.hit) {
    RecordMiss(resp.miss);
    return Status::NotFound("cache miss");
  }
  // Record the read for commit-time validation. The response's exclusive upper converts to
  // the last timestamp the value is known unchanged through: a still-valid hit reports the
  // shard's applied-invalidation position, a closed hit the truncation point (such a read
  // will fail a writer's validation — correctly, the value IS stale at any later commit —
  // while a write-free transaction, serializing at its snapshot, passes).
  ReadValidationEntry entry;
  entry.tags = resp.tags_ref();
  entry.valid_through = resp.interval.unbounded() ? rw_snapshot_ : resp.interval.upper - 1;
  if (!entry.tags.empty()) {
    rw_read_set_.push_back(std::move(entry));
  }
  ++stats_.cache_hits;
  stats_.saved_recompute_cost_us += resp.fill_cost_us;
  return std::move(resp.value);  // zero-copy alias, same contract as CacheLookup
}

Status TxCacheClient::WriteIntent(const std::string& key) {
  if (state_ != TxnState::kOptimisticRw) {
    return Status::FailedPrecondition("no optimistic read-write transaction");
  }
  IntentRequest req;
  req.key = key;
  req.key_hash = Fnv1a(key);
  req.txn_id = rw_intent_token_;
  IntentResponse resp = cache_->AcquireIntent(req);
  ObserveRingEpoch(resp.ring_epoch);
  if (resp.status.ok()) {
    rw_intents_.emplace_back(key, req.key_hash);
    ++stats_.rw_intents_acquired;
    return Status::Ok();
  }
  if (resp.status.code() == StatusCode::kConflict) {
    ++stats_.rw_intent_conflicts;
    return resp.status;  // early abort signal: another transaction got there first
  }
  // kUnavailable (down/joining/unroutable owner): the node serves no reads, so there is
  // nothing to protect — vacuous success, nothing to release later.
  return Status::Ok();
}

Result<Timestamp> TxCacheClient::CommitRw() {
  if (state_ != TxnState::kOptimisticRw) {
    return Status::FailedPrecondition("no optimistic read-write transaction");
  }
  auto info_or = db_->CommitValidated(*db_txn_, rw_read_set_);
  if (!info_or.ok()) {
    if (info_or.status().code() != StatusCode::kConflict) {
      // Validation conflicts abort in place inside CommitValidated; anything else (bad txn
      // id, engine error) still needs the explicit abort.
      db_->Abort(*db_txn_);
    }
    EndTransactionCleanup();  // releases the intents
    ++stats_.aborts;
    ++stats_.rw_aborts;
    return info_or.status();
  }
  const Timestamp ts = info_or.value().ts;
  EndTransactionCleanup();
  ++stats_.commits;
  ++stats_.rw_commits;
  return ts;
}

Result<Timestamp> TxCacheClient::RunRwTransaction(const std::function<Status()>& body) {
  for (uint64_t attempt = 0;; ++attempt) {
    Status begin = BeginRw();
    if (!begin.ok()) {
      return begin;
    }
    Status body_st = body();
    Status outcome;
    if (body_st.ok()) {
      auto ts_or = CommitRw();
      if (ts_or.ok()) {
        return ts_or;
      }
      outcome = ts_or.status();
    } else {
      Abort();
      outcome = body_st;
    }
    if (outcome.code() != StatusCode::kConflict || attempt + 1 >= options_.rw_max_retries) {
      return outcome;  // non-retryable failure, or the retry budget is spent
    }
    ++stats_.rw_retries;
    RwBackoff(attempt);
  }
}

void TxCacheClient::RwBackoff(uint64_t attempt) {
  // Capped exponential: attempt k targets base << k, clamped to the cap. Half the delay is
  // fixed, half jitter from a deterministic SplitMix64 stream — two clients seeded apart
  // desynchronize their retries, and a seeded test replays the exact delay sequence.
  const WallClock base = std::max<WallClock>(options_.rw_backoff_base, 1);
  const uint64_t shift = std::min<uint64_t>(attempt, 20);
  const WallClock target =
      std::min(options_.rw_backoff_cap, static_cast<WallClock>(base << shift));
  rw_backoff_state_ += 0x9e3779b97f4a7c15ull;  // SplitMix64 increment
  const WallClock half = std::max<WallClock>(target / 2, 1);
  const WallClock delay =
      half + static_cast<WallClock>(Mix64(rw_backoff_state_) % static_cast<uint64_t>(half + 1));
  if (options_.rw_backoff_sleep) {
    options_.rw_backoff_sleep(delay);
    return;
  }
  std::this_thread::sleep_for(std::chrono::microseconds(delay));
}

void TxCacheClient::ReleaseRwIntents() {
  for (const auto& [key, hash] : rw_intents_) {
    IntentRequest req;
    req.key = key;
    req.key_hash = hash;
    req.txn_id = rw_intent_token_;
    // kUnavailable is fine: a crashed/rejoined owner already dropped its intents wholesale.
    cache_->ReleaseIntent(req);
  }
  rw_intents_.clear();
}

Result<Timestamp> TxCacheClient::Commit() {
  if (!in_transaction()) {
    return Status::FailedPrecondition("no active transaction");
  }
  if (state_ == TxnState::kOptimisticRw) {
    // A generic Commit on an optimistic transaction must never skip read validation.
    return CommitRw();
  }
  Timestamp report;
  if (db_txn_.has_value()) {
    auto info_or = db_->Commit(*db_txn_);
    if (!info_or.ok()) {
      // Commit-time failure (e.g. serialization conflict): the transaction is gone.
      db_->Abort(*db_txn_);
      EndTransactionCleanup();
      ++stats_.aborts;
      return info_or.status();
    }
    report = info_or.value().ts;
    if (state_ == TxnState::kReadOnly) {
      // Report a serialization point from the FINAL pin set (Invariant 1 holds at every one of
      // its timestamps); the snapshot chosen for database queries is always still in it.
      report = pin_set_.has_pins() ? pin_set_.newest().ts
                                   : chosen_ts_.value_or(info_or.value().ts);
    }
  } else {
    // Never touched the database: served entirely from the cache (or empty). The transaction
    // is serializable at any pin-set timestamp; report the newest.
    report = pin_set_.has_pins() ? pin_set_.newest().ts : db_->LatestCommitTs();
  }
  EndTransactionCleanup();
  ++stats_.commits;
  return report;
}

Status TxCacheClient::Abort() {
  if (!in_transaction()) {
    return Status::FailedPrecondition("no active transaction");
  }
  if (db_txn_.has_value()) {
    db_->Abort(*db_txn_);
  }
  if (state_ == TxnState::kOptimisticRw) {
    // An optimistic round abandoned before commit (intent conflict, read conflict surfaced by
    // the body) is an rw abort just like a failed validation.
    ++stats_.rw_aborts;
  }
  EndTransactionCleanup();
  ++stats_.aborts;
  return Status::Ok();
}

void TxCacheClient::EndTransactionCleanup() {
  // Intents first (they are keyed by the still-live transaction id): EVERY exit path funnels
  // through here — commit, validation abort, explicit abort, destructor — so no intent can
  // outlive its transaction on this client.
  ReleaseRwIntents();
  rw_read_set_.clear();
  rw_snapshot_ = kTimestampZero;
  rw_intent_token_ = 0;
  if (!acquired_pins_.empty()) {
    pincushion_->Release(acquired_pins_);
    acquired_pins_.clear();
  }
  pin_set_.Reset({}, false);
  db_txn_.reset();
  chosen_ts_.reset();
  frames_.clear();
  state_ = TxnState::kNone;
}

PinInfo TxCacheClient::PinNewSnapshot() {
  PinnedSnapshot snap = db_->Pin();
  PinInfo pin{snap.ts, snap.wallclock};
  pincushion_->Register(pin);  // marks it in use once on our behalf
  acquired_pins_.push_back(pin);
  ++stats_.pins_created;
  return pin;
}

Status TxCacheClient::EnsurePinnedSnapshot() {
  if (pin_set_.has_pins()) {
    return Status::Ok();
  }
  // No sufficiently fresh pinned snapshot exists: pin the latest one (§5.4).
  pin_set_.AddPin(PinNewSnapshot());
  return Status::Ok();
}

Status TxCacheClient::EnsureDbTxn() {
  if (db_txn_.has_value()) {
    return Status::Ok();
  }
  assert(state_ == TxnState::kReadOnly);
  if (options_.mode == ClientMode::kNoCache) {
    auto txn_or = db_->BeginReadOnly();
    if (!txn_or.ok()) {
      return txn_or.status();
    }
    db_txn_ = txn_or.value();
    auto snap_or = db_->SnapshotOf(*db_txn_);
    chosen_ts_ = snap_or.ok() ? snap_or.value() : db_->LatestCommitTs();
    return Status::Ok();
  }
  // §6.2 policy: choose * (pin a brand-new snapshot) only when the freshest pin is older than
  // the threshold; otherwise run on the newest pinned snapshot. This bounds pinned-snapshot
  // churn on the database.
  Timestamp chosen;
  const bool stale_pins =
      !pin_set_.has_pins() ||
      clock_->Now() - pin_set_.newest().pinned_at > options_.new_pin_threshold;
  if (pin_set_.has_star() && stale_pins) {
    PinInfo pin = PinNewSnapshot();
    pin_set_.AddPin(pin);  // reify *: "the present" becomes a concrete timestamp
    chosen = pin.ts;
  } else if (pin_set_.has_pins()) {
    chosen = pin_set_.newest().ts;
  } else {
    return Status::Internal("pin set empty with no star");  // Invariant 2 violation
  }
  auto txn_or = db_->BeginReadOnly(chosen);
  if (!txn_or.ok()) {
    return txn_or.status();
  }
  db_txn_ = txn_or.value();
  chosen_ts_ = chosen;
  return Status::Ok();
}

void TxCacheClient::PropagateToFrames(const Interval& validity,
                                      const std::vector<InvalidationTag>& tags) {
  // Every cacheable function on the call stack depends on this observation (§6.3).
  for (Frame& frame : frames_) {
    frame.validity = frame.validity.Intersect(validity);
    frame.tags.insert(tags.begin(), tags.end());
  }
}

Result<QueryResult> TxCacheClient::ExecuteQuery(const Query& query) {
  return ExecuteQueryInternal(query, /*override_tags=*/nullptr);
}

Result<QueryResult> TxCacheClient::ExecuteQueryTagged(const Query& query,
                                                      const std::vector<InvalidationTag>& tags) {
  return ExecuteQueryInternal(query, &tags);
}

Result<QueryResult> TxCacheClient::ExecuteQueryInternal(
    const Query& query, const std::vector<InvalidationTag>* override_tags) {
  if (!in_transaction()) {
    return Status::FailedPrecondition("no active transaction");
  }
  if (state_ == TxnState::kReadWrite || state_ == TxnState::kOptimisticRw) {
    ++stats_.db_queries;
    auto rw_result = db_->Execute(*db_txn_, query);
    if (rw_result.ok()) {
      stats_.db_tuples_examined += rw_result.value().stats.tuples_examined;
      stats_.db_index_probes += rw_result.value().stats.index_probes;
      if (state_ == TxnState::kOptimisticRw && !rw_result.value().tags.empty()) {
        // Optimistic transactions validate their engine reads too: the db vouches for the
        // result through the transaction snapshot (the engine tag-tracked the query under
        // track_reads; validity intervals stay unbounded because the snapshot sees our own
        // uncommitted writes). With override_tags (statically derived, a superset of the
        // engine's), validation keys off the broader set — strictly more conflict-prone,
        // never less safe.
        ReadValidationEntry entry;
        entry.tags = override_tags != nullptr ? *override_tags : rw_result.value().tags;
        entry.valid_through = rw_snapshot_;
        rw_read_set_.push_back(std::move(entry));
      }
    }
    return rw_result;
  }
  Status st = EnsureDbTxn();
  if (!st.ok()) {
    return st;
  }
  auto result_or = db_->Execute(*db_txn_, query);
  ++stats_.db_queries;
  if (!result_or.ok()) {
    return result_or;
  }
  const QueryResult& result = result_or.value();
  stats_.db_tuples_examined += result.stats.tuples_examined;
  stats_.db_index_probes += result.stats.index_probes;
  if (options_.mode != ClientMode::kNoCache) {
    if (options_.mode == ClientMode::kConsistent) {
      // The result's validity interval contains the chosen snapshot, so narrowing cannot empty
      // the pin set (Invariant 2); it also drops * (§6.2).
      bool ok = pin_set_.NarrowTo(result.validity);
      assert(ok && "query validity must contain the chosen snapshot");
      (void)ok;
    } else {
      pin_set_.DropStar();
    }
    PropagateToFrames(result.validity,
                      override_tags != nullptr ? *override_tags : result.tags);
  }
  return result_or;
}

Status TxCacheClient::Insert(const std::string& table, Row row) {
  if (state_ != TxnState::kReadWrite && state_ != TxnState::kOptimisticRw) {
    return Status::FailedPrecondition("writes require a read/write transaction");
  }
  ++stats_.db_writes;
  return db_->Insert(*db_txn_, table, std::move(row));
}

Result<size_t> TxCacheClient::Update(const std::string& table, const AccessPath& path,
                                     const PredicatePtr& where,
                                     const std::vector<std::pair<ColumnId, Value>>& sets) {
  if (state_ != TxnState::kReadWrite && state_ != TxnState::kOptimisticRw) {
    return Status::FailedPrecondition("writes require a read/write transaction");
  }
  ++stats_.db_writes;
  return db_->Update(*db_txn_, table, path, where, sets);
}

Result<size_t> TxCacheClient::Delete(const std::string& table, const AccessPath& path,
                                     const PredicatePtr& where) {
  if (state_ != TxnState::kReadWrite && state_ != TxnState::kOptimisticRw) {
    return Status::FailedPrecondition("writes require a read/write transaction");
  }
  ++stats_.db_writes;
  return db_->Delete(*db_txn_, table, path, where);
}

void TxCacheClient::LookupBounds(Timestamp* lo, Timestamp* hi) const {
  if (chosen_ts_.has_value() && options_.mode == ClientMode::kConsistent) {
    // The serialization timestamp is already fixed (a database query ran at it). Invariant 2's
    // proof (§6.2.1) relies on the chosen timestamp remaining in the pin set — a later query
    // executes at that snapshot and narrows the pin set to its validity interval — so a cached
    // value is only usable if it was valid at exactly that timestamp.
    *lo = *chosen_ts_;
    *hi = *chosen_ts_;
  } else {
    *lo = pin_set_.BoundsLo();
    *hi = pin_set_.BoundsHi();
  }
}

void TxCacheClient::RecordMiss(MissKind kind) {
  ++stats_.cache_misses;
  switch (kind) {
    case MissKind::kCompulsory:
      ++stats_.miss_compulsory;
      break;
    case MissKind::kStaleness:
      ++stats_.miss_staleness;
      break;
    case MissKind::kCapacity:
      ++stats_.miss_capacity;
      break;
    case MissKind::kConsistency:
      ++stats_.miss_consistency;
      break;
    case MissKind::kNodeUnavailable:
      ++stats_.miss_node_unavailable;
      break;
    case MissKind::kNone:
      break;
  }
}

void TxCacheClient::ObserveHints(const std::string& key, const std::string* function,
                                 const std::string& served_by,
                                 const std::shared_ptr<const AdvisoryHints>& hints) {
  if (hints == nullptr) {
    return;
  }
  // The function name is the hint bucket. CacheableFunction passes its own name down, so
  // the hot path never re-parses the key; raw callers fall back to the MakeCacheKey prefix,
  // exactly as the server's cost accounting does — either way hints line up 1:1 with
  // MAKE-CACHEABLE names. Within a function, observations are kept per responding node
  // (served_by; direct unrouted responses share the "" bucket): each node publishes its OWN
  // learned state, and overwriting one node's observation with another's — the old behavior
  // — made the merged view whatever node happened to answer last.
  std::string parsed;
  if (function == nullptr) {
    parsed = CacheKeyFunction(key);
    function = &parsed;
  }
  std::lock_guard<std::mutex> lock(hints_mu_);
  auto it = observed_hints_.find(*function);
  if (it == observed_hints_.end()) {
    if (observed_hints_.size() >= kMaxHintFunctions) {
      return;
    }
    it = observed_hints_.emplace(*function,
                                 std::unordered_map<std::string, NodeHintObservation>{})
             .first;
  }
  NodeHintObservation& obs = it->second[served_by];
  obs.hints = *hints;
  ++obs.observations;
}

std::optional<AdvisoryHints> TxCacheClient::AdvisoryHintsFor(const std::string& function) const {
  std::lock_guard<std::mutex> lock(hints_mu_);
  auto it = observed_hints_.find(function);
  if (it == observed_hints_.end() || it->second.empty()) {
    return std::nullopt;
  }
  // Merge the per-node observations into one fleet view. decline_rate takes the max: one
  // node refusing this function's fills is already actionable (that node owns a share of the
  // key space, and fills routed there are wasted work). The learned lifetime and
  // benefit-per-byte are averaged weighted by each node's observation count — a node that
  // served most of the function's traffic taught us most of what we know — skipping nodes
  // that have not learned a value yet (zero means "no estimate", not "short").
  AdvisoryHints merged;
  uint64_t lifetime_weight = 0;
  double lifetime_sum = 0.0;
  double bpb_weight = 0.0;
  double bpb_sum = 0.0;
  for (const auto& [node, obs] : it->second) {
    merged.decline_rate = std::max(merged.decline_rate, obs.hints.decline_rate);
    if (obs.hints.learned_lifetime_us > 0) {
      lifetime_weight += obs.observations;
      lifetime_sum += static_cast<double>(obs.hints.learned_lifetime_us) *
                      static_cast<double>(obs.observations);
    }
    if (obs.hints.observed_bpb > 0.0) {
      bpb_weight += static_cast<double>(obs.observations);
      bpb_sum += obs.hints.observed_bpb * static_cast<double>(obs.observations);
    }
  }
  if (lifetime_weight > 0) {
    merged.learned_lifetime_us =
        static_cast<uint64_t>(lifetime_sum / static_cast<double>(lifetime_weight));
  }
  if (bpb_weight > 0.0) {
    merged.observed_bpb = bpb_sum / bpb_weight;
  }
  return merged;
}

void TxCacheClient::ObserveRingEpoch(uint64_t epoch) {
  if (epoch == 0) {
    return;  // response was not routed through the cluster
  }
  const uint64_t prev = ring_epoch_.exchange(epoch, std::memory_order_relaxed);
  if (prev != 0 && prev != epoch) {
    // Membership moved under us: the next keys may route to different nodes. In-process the
    // refresh is implicit (routing always reads the live ring); the counter records that the
    // client re-routed instead of erroring.
    ++stats_.ring_epoch_changes;
  }
}

Result<TxCacheClient::CachedValue> TxCacheClient::CacheLookup(const std::string& key,
                                                              const std::string* function) {
  assert(ShouldUseCache());
  Status st = EnsurePinnedSnapshot();
  if (!st.ok()) {
    return st;
  }
  LookupRequest req;
  req.key = key;
  // Hash-once: computed here, reused by ring routing, shard selection and the shard's map
  // probe — no layer below rehashes the key.
  req.key_hash = Fnv1a(key);
  LookupBounds(&req.bounds_lo, &req.bounds_hi);
  req.fresh_lo = pin_set_.BoundsLo();
  // Routed through the cluster: a down/departed owner degrades to a miss (recompute), never
  // an error (§4 failure model), and the response's epoch refreshes our routing view.
  LookupResponse resp = cache_->Lookup(req);
  ObserveRingEpoch(resp.ring_epoch);
  ObserveHints(key, function, resp.served_by, resp.hints);
  if (!resp.hit) {
    RecordMiss(resp.miss);
    return Status::NotFound("cache miss");
  }
  if (options_.mode == ClientMode::kConsistent) {
    // Exact narrowing against the actual pin set (the server only checked bounds). An empty
    // intersection means using this value could break serializability: treat it as a miss.
    if (!pin_set_.NarrowTo(resp.interval)) {
      ++stats_.pin_set_rejects;
      RecordMiss(MissKind::kConsistency);
      return Status::NotFound("cache hit rejected by pin set");
    }
  }
  PropagateToFrames(resp.interval, resp.tags_ref());
  ++stats_.cache_hits;
  stats_.saved_recompute_cost_us += resp.fill_cost_us;
  return std::move(resp.value);  // zero-copy: hand the resident-buffer alias to the caller
}

std::vector<Result<TxCacheClient::CachedValue>> TxCacheClient::CacheMultiLookup(
    const std::vector<std::string>& keys, const std::string* function) {
  assert(ShouldUseCache());
  std::vector<Result<CachedValue>> out;
  out.reserve(keys.size());
  Status st = EnsurePinnedSnapshot();
  if (!st.ok()) {
    out.assign(keys.size(), Result<CachedValue>(st));
    return out;
  }
  MultiLookupRequest req;
  req.lookups.resize(keys.size());
  // Every entry probes with the bounds the pin set has *now*; the authoritative per-hit
  // narrowing below handles the entries whose server-side check went stale mid-batch.
  Timestamp lo, hi;
  LookupBounds(&lo, &hi);
  for (size_t i = 0; i < keys.size(); ++i) {
    req.lookups[i].key = keys[i];
    req.lookups[i].key_hash = Fnv1a(keys[i]);  // hash-once for the whole batch pipeline
    req.lookups[i].bounds_lo = lo;
    req.lookups[i].bounds_hi = hi;
    req.lookups[i].fresh_lo = pin_set_.BoundsLo();
  }
  ++stats_.multi_lookup_batches;
  stats_.multi_lookup_keys += keys.size();
  auto resp_or = cache_->MultiLookup(req);
  if (!resp_or.ok()) {
    // Whole-fleet outage (empty ring): every position degrades to a miss and the caller
    // recomputes — churn never fails a batch.
    for (size_t i = 0; i < keys.size(); ++i) {
      RecordMiss(MissKind::kNodeUnavailable);
      out.push_back(Result<CachedValue>(Status::NotFound("cache unavailable")));
    }
    return out;
  }
  ObserveRingEpoch(resp_or.value().ring_epoch);
  // Thread the pin-set intersection through the batch in request order: each accepted hit
  // narrows the pin set, and later hits must intersect the already-narrowed set — exactly the
  // serializability rule sequential lookups enforce (§6.2).
  for (size_t i = 0; i < resp_or.value().responses.size(); ++i) {
    LookupResponse& resp = resp_or.value().responses[i];
    ObserveHints(keys[i], function, resp.served_by, resp.hints);
    if (!resp.hit) {
      RecordMiss(resp.miss);
      out.push_back(Result<CachedValue>(Status::NotFound("cache miss")));
      continue;
    }
    if (options_.mode == ClientMode::kConsistent && !pin_set_.NarrowTo(resp.interval)) {
      ++stats_.pin_set_rejects;
      RecordMiss(MissKind::kConsistency);
      out.push_back(Result<CachedValue>(Status::NotFound("cache hit rejected by pin set")));
      continue;
    }
    PropagateToFrames(resp.interval, resp.tags_ref());
    ++stats_.cache_hits;
    stats_.saved_recompute_cost_us += resp.fill_cost_us;
    out.push_back(Result<CachedValue>(std::move(resp.value)));
  }
  return out;
}

Result<TxCacheClient::CachedValue> TxCacheClient::RwCacheLookup(const std::string& key,
                                                                const std::string* function) {
  assert(ShouldTryRwCacheRead());
  auto snap_or = db_->SnapshotOf(*db_txn_);
  if (!snap_or.ok()) {
    return snap_or.status();
  }
  LookupRequest req;
  req.key = key;
  req.key_hash = Fnv1a(key);
  req.bounds_lo = snap_or.value();
  req.bounds_hi = snap_or.value();
  req.fresh_lo = snap_or.value();
  LookupResponse resp = cache_->Lookup(req);
  ObserveRingEpoch(resp.ring_epoch);
  ObserveHints(key, function, resp.served_by, resp.hints);
  if (!resp.hit) {
    ++stats_.cache_misses;
    return Status::NotFound("cache miss");
  }
  ++stats_.cache_hits;
  stats_.saved_recompute_cost_us += resp.fill_cost_us;
  return std::move(resp.value);
}

void TxCacheClient::FrameBegin() {
  Frame frame;
  frame.started_wall = clock_->Now();
  frame.start_db_queries = stats_.db_queries.load(std::memory_order_relaxed);
  frame.start_db_tuples = stats_.db_tuples_examined.load(std::memory_order_relaxed);
  frame.start_db_probes = stats_.db_index_probes.load(std::memory_order_relaxed);
  frames_.push_back(std::move(frame));
}

FrameOutcome TxCacheClient::FrameEnd() {
  assert(!frames_.empty());
  Frame frame = std::move(frames_.back());
  frames_.pop_back();
  FrameOutcome outcome;
  outcome.validity = frame.validity;
  outcome.tags.assign(frame.tags.begin(), frame.tags.end());
  // Fill-cost meter: wall-clock elapsed plus weighted database work performed inside the
  // frame. A nested frame's work is deliberately included in its parent — recomputing the
  // parent really does redo the child's work (or re-fetch it, which the weights approximate).
  const WallClock elapsed = clock_->Now() - frame.started_wall;
  const uint64_t dq = stats_.db_queries.load(std::memory_order_relaxed) - frame.start_db_queries;
  const uint64_t dt =
      stats_.db_tuples_examined.load(std::memory_order_relaxed) - frame.start_db_tuples;
  const uint64_t dp =
      stats_.db_index_probes.load(std::memory_order_relaxed) - frame.start_db_probes;
  outcome.fill_cost_us =
      static_cast<uint64_t>(std::max<WallClock>(elapsed, 0)) +
      dq * static_cast<uint64_t>(options_.fill_cost_per_query) +
      dt * static_cast<uint64_t>(options_.fill_cost_per_tuple) +
      dp * static_cast<uint64_t>(options_.fill_cost_per_probe);
  if (chosen_ts_.has_value()) {
    outcome.computed_at = *chosen_ts_;
  } else if (pin_set_.has_pins()) {
    // The pin set always lies within every frame's validity interval (§6.2), so the newest pin
    // is a timestamp the database implicitly vouched for.
    outcome.computed_at = pin_set_.newest().ts;
  } else {
    outcome.computed_at = outcome.validity.lower;
  }
  return outcome;
}

void TxCacheClient::FrameAbandon() {
  assert(!frames_.empty());
  frames_.pop_back();
}

void TxCacheClient::CacheStore(const std::string& key, std::string value,
                               const FrameOutcome& outcome, const std::string* function) {
  // Every stored-or-not fill was a recompute this client actually paid for.
  stats_.recompute_cost_us += outcome.fill_cost_us;
  if (outcome.validity.empty()) {
    // Possible under kNoConsistency, where observations are not forced to stay consistent.
    ++stats_.inserts_skipped;
    return;
  }
  InsertRequest req;
  req.key = key;
  req.key_hash = Fnv1a(key);  // hash-once: ring routing and shard probe reuse it
  req.value = std::move(value);
  req.interval = outcome.validity;
  req.computed_at = outcome.computed_at;
  req.tags = outcome.tags;
  req.fill_cost_us = outcome.fill_cost_us;
  InsertResponse resp = cache_->Insert(req);
  ObserveRingEpoch(resp.ring_epoch);
  ObserveHints(key, function, resp.served_by, resp.hints);
  if (resp.status.ok()) {
    ++stats_.cache_inserts;
  } else if (resp.status.code() == StatusCode::kDeclined) {
    // The admission gate judged this function not worth its bytes right now; the recompute
    // already happened, only the store was refused.
    ++stats_.inserts_declined;
  } else if (resp.status.code() == StatusCode::kDeclinedTooLarge) {
    // Size-aware refusal: the value is too big for its shard slice or lost the displacement
    // comparison. Counted separately so call sites (and their hints) can adapt fill sizing.
    // Nothing is retried — the caller already has its computed result.
    ++stats_.inserts_declined_too_large;
  } else if (resp.status.code() == StatusCode::kUnavailable) {
    // The owning node is down/joining or the key was unroutable: the fill simply is not
    // cached this time (churn is a hit-rate event, not an error).
    ++stats_.inserts_unavailable;
  }
}

}  // namespace txcache
