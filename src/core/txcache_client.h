// The TxCache application-side library (paper §2.1, §6).
//
// Applications see the paper's five-call API — BEGIN-RO(staleness), BEGIN-RW, COMMIT, ABORT and
// MAKE-CACHEABLE — and nothing else: cache servers, validity intervals, pin sets and
// invalidation tags are all handled here.
//
//   TxCacheClient client(&db, &pincushion, &cluster, &clock);
//   auto get_user = client.MakeCacheable<UserInfo, int64_t>("get_user", [&](int64_t id) {...});
//   client.BeginRO(Seconds(30));
//   UserInfo u = get_user(42);        // cache hit or transparent recompute+insert
//   Timestamp ts = client.Commit().value();
//
// Read/write transactions bypass the cache entirely (§2.2). Read-only transactions choose their
// serialization timestamp lazily (§6.2): the pin set starts as every sufficiently fresh pinned
// snapshot plus * ("the present") and narrows as cached values and query results are observed;
// the first real database query forces a concrete snapshot.
//
// A client instance drives one session at a time and is not thread-safe; the shared components
// it talks to (database, cache servers, pincushion) are.
#ifndef SRC_CORE_TXCACHE_CLIENT_H_
#define SRC_CORE_TXCACHE_CLIENT_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/cache/cache_cluster.h"
#include "src/core/pin_set.h"
#include "src/db/database.h"
#include "src/pincushion/pincushion.h"
#include "src/util/clock.h"
#include "src/util/serde.h"

namespace txcache {

// Evaluation modes (paper §8): kConsistent is TxCache; kNoConsistency keeps the invalidation
// machinery but serves any sufficiently fresh version, ignoring transactional consistency;
// kNoCache is the no-caching baseline (every call executes against the database).
enum class ClientMode : uint8_t { kConsistent, kNoConsistency, kNoCache };

struct ClientStats {
  uint64_t ro_txns = 0;
  uint64_t rw_txns = 0;
  uint64_t commits = 0;
  uint64_t aborts = 0;
  uint64_t cacheable_calls = 0;
  uint64_t bypassed_calls = 0;  // executed directly: RW transaction or kNoCache mode
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t miss_compulsory = 0;
  uint64_t miss_staleness = 0;
  uint64_t miss_capacity = 0;
  uint64_t miss_consistency = 0;
  // The owning cache node was down, joining, or unroutable (membership churn): the call
  // degraded to a recompute instead of failing (paper §4's failure model).
  uint64_t miss_node_unavailable = 0;
  // Server-side bounds matched but the exact pin-set intersection was empty; treated as a
  // consistency miss (see PinSet::NarrowTo).
  uint64_t pin_set_rejects = 0;
  uint64_t cache_inserts = 0;
  uint64_t inserts_skipped = 0;  // empty accumulated validity (possible under kNoConsistency)
  uint64_t db_queries = 0;
  uint64_t db_tuples_examined = 0;
  uint64_t db_index_probes = 0;
  uint64_t db_writes = 0;  // INSERT/UPDATE/DELETE statements issued
  uint64_t pins_created = 0;
  uint64_t multi_lookup_batches = 0;  // batched cache round-trips issued
  uint64_t multi_lookup_keys = 0;     // keys resolved through batched round-trips
  // Cost pipeline (automatic management): recompute_cost_us is the measured fill cost of every
  // cacheable-function miss this client had to recompute; saved_recompute_cost_us is the
  // stored fill cost of every hit (the recompute the cache saved); inserts_declined counts
  // fills the server's admission gate refused to store.
  uint64_t recompute_cost_us = 0;
  uint64_t saved_recompute_cost_us = 0;
  uint64_t inserts_declined = 0;
  // Size-aware declines (kDeclinedTooLarge), counted separately from the watermark's
  // inserts_declined: the value was too big for its shard slice or lost the displacement
  // comparison — the signal MAKE-CACHEABLE call sites adapt fill sizing to.
  uint64_t inserts_declined_too_large = 0;
  uint64_t inserts_unavailable = 0;  // fills not stored because the owning node was down/joining
  // Times a cluster response carried a different membership epoch than the last one observed:
  // the client refreshed its routing view instead of erroring (re-route events under churn).
  uint64_t ring_epoch_changes = 0;
  // Optimistic read-write transactions (BeginRw/ReadInTx/WriteIntent/CommitRw).
  // rw_optimistic_txns counts BeginRw calls; rw_commits/rw_aborts split their outcomes
  // (both also feed the generic commits/aborts totals). rw_retries counts abort-and-retry
  // rounds taken by RunRwTransaction; rw_intent_conflicts counts early aborts triggered by a
  // foreign write intent (an acquire refused, or an in-transaction read that saw one);
  // rw_intents_acquired counts successful check-and-acquires.
  uint64_t rw_optimistic_txns = 0;
  uint64_t rw_commits = 0;
  uint64_t rw_aborts = 0;
  uint64_t rw_retries = 0;
  uint64_t rw_intent_conflicts = 0;
  uint64_t rw_intents_acquired = 0;

  // Counter-wise accumulation and difference (fleet aggregation, measurement-window deltas).
  // Kept here so the compiler owns the field list: a counter added to the struct but missed
  // below is a local asymmetry, not a silently wrong aggregate in some distant benchmark.
  ClientStats& operator+=(const ClientStats& o) {
    ForEachPair(o, [](uint64_t& a, uint64_t b) { a += b; });
    return *this;
  }
  ClientStats& operator-=(const ClientStats& o) {
    ForEachPair(o, [](uint64_t& a, uint64_t b) { a -= b; });
    return *this;
  }

 private:
  template <typename Fn>
  void ForEachPair(const ClientStats& o, Fn fn) {
    uint64_t ClientStats::*fields[] = {
        &ClientStats::ro_txns, &ClientStats::rw_txns, &ClientStats::commits,
        &ClientStats::aborts, &ClientStats::cacheable_calls, &ClientStats::bypassed_calls,
        &ClientStats::cache_hits, &ClientStats::cache_misses, &ClientStats::miss_compulsory,
        &ClientStats::miss_staleness, &ClientStats::miss_capacity,
        &ClientStats::miss_consistency, &ClientStats::miss_node_unavailable,
        &ClientStats::pin_set_rejects, &ClientStats::cache_inserts,
        &ClientStats::inserts_skipped, &ClientStats::db_queries,
        &ClientStats::db_tuples_examined, &ClientStats::db_index_probes,
        &ClientStats::db_writes, &ClientStats::pins_created,
        &ClientStats::multi_lookup_batches, &ClientStats::multi_lookup_keys,
        &ClientStats::recompute_cost_us, &ClientStats::saved_recompute_cost_us,
        &ClientStats::inserts_declined, &ClientStats::inserts_declined_too_large,
        &ClientStats::inserts_unavailable, &ClientStats::ring_epoch_changes,
        &ClientStats::rw_optimistic_txns, &ClientStats::rw_commits, &ClientStats::rw_aborts,
        &ClientStats::rw_retries, &ClientStats::rw_intent_conflicts,
        &ClientStats::rw_intents_acquired};
    for (auto field : fields) {
      fn(this->*field, o.*field);
    }
  }
};

// Atomic mirror of ClientStats. A client session is single-threaded, but its counters are
// routinely read while the session is running (benchmarks, the simulator's monitors, the
// stress tests) — plain uint64_t fields would make that a data race once the cache fleet is
// under real concurrent load. Increment sites use the atomics' built-in operators (seq_cst;
// the session thread is the only writer, readers need only atomicity); Snapshot/Reset read
// and clear with relaxed ordering.
struct AtomicClientStats {
  std::atomic<uint64_t> ro_txns{0};
  std::atomic<uint64_t> rw_txns{0};
  std::atomic<uint64_t> commits{0};
  std::atomic<uint64_t> aborts{0};
  std::atomic<uint64_t> cacheable_calls{0};
  std::atomic<uint64_t> bypassed_calls{0};
  std::atomic<uint64_t> cache_hits{0};
  std::atomic<uint64_t> cache_misses{0};
  std::atomic<uint64_t> miss_compulsory{0};
  std::atomic<uint64_t> miss_staleness{0};
  std::atomic<uint64_t> miss_capacity{0};
  std::atomic<uint64_t> miss_consistency{0};
  std::atomic<uint64_t> miss_node_unavailable{0};
  std::atomic<uint64_t> pin_set_rejects{0};
  std::atomic<uint64_t> cache_inserts{0};
  std::atomic<uint64_t> inserts_skipped{0};
  std::atomic<uint64_t> db_queries{0};
  std::atomic<uint64_t> db_tuples_examined{0};
  std::atomic<uint64_t> db_index_probes{0};
  std::atomic<uint64_t> db_writes{0};
  std::atomic<uint64_t> pins_created{0};
  std::atomic<uint64_t> multi_lookup_batches{0};
  std::atomic<uint64_t> multi_lookup_keys{0};
  std::atomic<uint64_t> recompute_cost_us{0};
  std::atomic<uint64_t> saved_recompute_cost_us{0};
  std::atomic<uint64_t> inserts_declined{0};
  std::atomic<uint64_t> inserts_declined_too_large{0};
  std::atomic<uint64_t> inserts_unavailable{0};
  std::atomic<uint64_t> ring_epoch_changes{0};
  std::atomic<uint64_t> rw_optimistic_txns{0};
  std::atomic<uint64_t> rw_commits{0};
  std::atomic<uint64_t> rw_aborts{0};
  std::atomic<uint64_t> rw_retries{0};
  std::atomic<uint64_t> rw_intent_conflicts{0};
  std::atomic<uint64_t> rw_intents_acquired{0};

  ClientStats Snapshot() const {
    ClientStats s;
    s.ro_txns = ro_txns.load(std::memory_order_relaxed);
    s.rw_txns = rw_txns.load(std::memory_order_relaxed);
    s.commits = commits.load(std::memory_order_relaxed);
    s.aborts = aborts.load(std::memory_order_relaxed);
    s.cacheable_calls = cacheable_calls.load(std::memory_order_relaxed);
    s.bypassed_calls = bypassed_calls.load(std::memory_order_relaxed);
    s.cache_hits = cache_hits.load(std::memory_order_relaxed);
    s.cache_misses = cache_misses.load(std::memory_order_relaxed);
    s.miss_compulsory = miss_compulsory.load(std::memory_order_relaxed);
    s.miss_staleness = miss_staleness.load(std::memory_order_relaxed);
    s.miss_capacity = miss_capacity.load(std::memory_order_relaxed);
    s.miss_consistency = miss_consistency.load(std::memory_order_relaxed);
    s.miss_node_unavailable = miss_node_unavailable.load(std::memory_order_relaxed);
    s.pin_set_rejects = pin_set_rejects.load(std::memory_order_relaxed);
    s.cache_inserts = cache_inserts.load(std::memory_order_relaxed);
    s.inserts_skipped = inserts_skipped.load(std::memory_order_relaxed);
    s.db_queries = db_queries.load(std::memory_order_relaxed);
    s.db_tuples_examined = db_tuples_examined.load(std::memory_order_relaxed);
    s.db_index_probes = db_index_probes.load(std::memory_order_relaxed);
    s.db_writes = db_writes.load(std::memory_order_relaxed);
    s.pins_created = pins_created.load(std::memory_order_relaxed);
    s.multi_lookup_batches = multi_lookup_batches.load(std::memory_order_relaxed);
    s.multi_lookup_keys = multi_lookup_keys.load(std::memory_order_relaxed);
    s.recompute_cost_us = recompute_cost_us.load(std::memory_order_relaxed);
    s.saved_recompute_cost_us = saved_recompute_cost_us.load(std::memory_order_relaxed);
    s.inserts_declined = inserts_declined.load(std::memory_order_relaxed);
    s.inserts_declined_too_large =
        inserts_declined_too_large.load(std::memory_order_relaxed);
    s.inserts_unavailable = inserts_unavailable.load(std::memory_order_relaxed);
    s.ring_epoch_changes = ring_epoch_changes.load(std::memory_order_relaxed);
    s.rw_optimistic_txns = rw_optimistic_txns.load(std::memory_order_relaxed);
    s.rw_commits = rw_commits.load(std::memory_order_relaxed);
    s.rw_aborts = rw_aborts.load(std::memory_order_relaxed);
    s.rw_retries = rw_retries.load(std::memory_order_relaxed);
    s.rw_intent_conflicts = rw_intent_conflicts.load(std::memory_order_relaxed);
    s.rw_intents_acquired = rw_intents_acquired.load(std::memory_order_relaxed);
    return s;
  }

  void Reset() {
    for (std::atomic<uint64_t>* c :
         {&ro_txns, &rw_txns, &commits, &aborts, &cacheable_calls, &bypassed_calls,
          &cache_hits, &cache_misses, &miss_compulsory, &miss_staleness, &miss_capacity,
          &miss_consistency, &miss_node_unavailable, &pin_set_rejects, &cache_inserts,
          &inserts_skipped, &db_queries, &db_tuples_examined, &db_index_probes, &db_writes,
          &pins_created, &multi_lookup_batches, &multi_lookup_keys, &recompute_cost_us,
          &saved_recompute_cost_us, &inserts_declined, &inserts_declined_too_large,
          &inserts_unavailable, &ring_epoch_changes, &rw_optimistic_txns, &rw_commits,
          &rw_aborts, &rw_retries, &rw_intent_conflicts, &rw_intents_acquired}) {
      c->store(0, std::memory_order_relaxed);
    }
  }
};

// Validity/tag accumulation for one cacheable function on the call stack (§6.3), plus the
// fill-cost meter: FrameBegin stamps the wall clock and the database work counters, FrameEnd
// converts the deltas into the µs of compute/DB time this fill cost — the benefit a future
// cache hit on it would deliver.
struct Frame {
  Interval validity = Interval::All();
  std::set<InvalidationTag> tags;
  WallClock started_wall = 0;
  uint64_t start_db_queries = 0;
  uint64_t start_db_tuples = 0;
  uint64_t start_db_probes = 0;
};

// What a finished frame learned; passed to CacheStore.
struct FrameOutcome {
  Interval validity = Interval::All();
  std::vector<InvalidationTag> tags;
  Timestamp computed_at = kTimestampZero;
  uint64_t fill_cost_us = 0;  // measured cost of producing this value (wall + weighted DB work)
};

class TxCacheClient {
 public:
  struct Options {
    WallClock default_staleness = Seconds(30);
    // Policy knob from §6.2: at the first database query, pin a fresh snapshot (choose *) only
    // if the newest pin in the pin set is older than this; otherwise reuse the newest pin.
    WallClock new_pin_threshold = Seconds(5);
    ClientMode mode = ClientMode::kConsistent;
    // §2.2 extension (off by default): let read/write transactions *read* cached values that
    // were valid at their snapshot. Opting in accepts the documented anomaly: a cacheable call
    // may return a value that predates the transaction's own uncommitted writes. Results of
    // cacheable functions executed inside RW transactions are still never stored.
    bool allow_rw_cache_reads = false;
    // Fill-cost weights: a frame's cost is its wall-clock elapsed time plus these per-unit
    // charges for the database work it performed. The wall term captures real deployments; the
    // weighted term keeps costs meaningful under the simulator, whose virtual clock does not
    // advance while application code runs. Defaults mirror sim::CostModel.
    WallClock fill_cost_per_query = Millis(0.12);
    WallClock fill_cost_per_tuple = Millis(0.004);
    WallClock fill_cost_per_probe = Millis(0.015);

    // --- optimistic read-write transactions (BeginRw / RunRwTransaction) ---
    // Abort-and-retry budget of RunRwTransaction: after this many conflict aborts the last
    // conflict status is returned to the caller instead of retrying again.
    uint64_t rw_max_retries = 12;
    // Capped exponential backoff between retries: attempt k waits roughly
    // min(rw_backoff_cap, rw_backoff_base << k), half fixed and half deterministic jitter
    // drawn from a SplitMix64 stream seeded with rw_backoff_seed (so a seeded test replays
    // the exact same delay sequence).
    WallClock rw_backoff_base = Millis(0.2);
    WallClock rw_backoff_cap = Millis(10);
    uint64_t rw_backoff_seed = 0x9e3779b97f4a7c15ull;
    // Injectable delay hook: called with each computed backoff (µs). When unset the client
    // sleeps for real (std::this_thread). Tests inject a recorder for determinism; the
    // simulator injects a virtual-clock advance so backoff costs simulated time, not wall
    // time.
    std::function<void(WallClock)> rw_backoff_sleep;
  };

  TxCacheClient(Database* db, Pincushion* pincushion, CacheCluster* cache, const Clock* clock)
      : TxCacheClient(db, pincushion, cache, clock, Options{}) {}
  TxCacheClient(Database* db, Pincushion* pincushion, CacheCluster* cache, const Clock* clock,
                Options options);
  ~TxCacheClient();

  TxCacheClient(const TxCacheClient&) = delete;
  TxCacheClient& operator=(const TxCacheClient&) = delete;

  // --- transactions ---
  Status BeginRO() { return BeginRO(options_.default_staleness); }
  Status BeginRO(WallClock staleness);
  Status BeginRW();
  // Commits and reports the timestamp the transaction ran at (§2.2) — usable as the staleness
  // bound of a later transaction to guarantee monotonic reads.
  Result<Timestamp> Commit();
  Status Abort();

  bool in_transaction() const { return state_ != TxnState::kNone; }
  bool in_read_only() const { return state_ == TxnState::kReadOnly; }
  bool in_optimistic_rw() const { return state_ == TxnState::kOptimisticRw; }

  // A cached payload handed back by the lookup paths. Zero-copy: it aliases the buffer
  // resident in the cache node (see LookupResponse::value); holding it keeps the bytes alive
  // and bitwise stable regardless of later evictions or invalidations.
  using CachedValue = std::shared_ptr<const std::string>;

  // --- optimistic read-write transactions through the cache ---
  // Unlike BeginRW (which bypasses the cache entirely, §2.2), an optimistic read-write
  // transaction READS through the cache and validates those reads at commit:
  //   - ReadInTx serves cached values valid at the transaction's snapshot and records their
  //     invalidation tags plus the timestamp they are known unchanged through (a still-valid
  //     hit's applied-invalidation position) into the transaction's read set. Cacheable
  //     functions called inside the transaction route through it automatically.
  //   - Database reads (direct or via recomputed cacheable functions) are tag-tracked by the
  //     engine and recorded with the snapshot as their known-unchanged point.
  //   - WriteIntent(key) announces that this transaction is about to invalidate `key`:
  //     check-and-acquire of the advisory per-key intent on the owning cache node. A refused
  //     acquire (kConflict) — or a ReadInTx that runs into a foreign intent — is an early
  //     abort signal; correctness never depends on it.
  //   - CommitRw commits through Database::CommitValidated: every recorded read is checked
  //     against the engine's exact last-invalidation bookkeeping inside the commit critical
  //     section, so a committed transaction is strictly serializable at its commit timestamp
  //     (its snapshot, when it wrote nothing). A stale read aborts with kConflict.
  //   - Results computed inside an optimistic transaction are never stored in the cache (its
  //     own uncommitted writes may have dirtied them).
  // RunRwTransaction wraps the begin/body/commit cycle in the canonical retry loop: on
  // kConflict (from the body or from commit validation) it aborts, waits a capped-exponential
  // jittered backoff, and retries up to Options::rw_max_retries times.
  Status BeginRw();
  Result<CachedValue> ReadInTx(const std::string& key, const std::string* function = nullptr);
  Status WriteIntent(const std::string& key);
  Result<Timestamp> CommitRw();
  Result<Timestamp> RunRwTransaction(const std::function<Status()>& body);

  // --- database access (bare queries/DML inside the current transaction) ---
  Result<QueryResult> ExecuteQuery(const Query& query);
  // Like ExecuteQuery, but `tags` — a statically derived superset of the access tags the
  // executor will attach (src/sql/tag_deriver.h) — is what flows into enclosing cacheable
  // frames and, in optimistic read-write transactions, into the commit-time read set, in
  // place of the executor's dynamically observed tags. Broader tags can only cause extra
  // invalidations or validation conflicts, never a stale read, so any superset is safe.
  // Validity intervals are never overridden (they come from the engine), and the returned
  // QueryResult still carries the executor's own tags so callers can diff the two sets.
  Result<QueryResult> ExecuteQueryTagged(const Query& query,
                                         const std::vector<InvalidationTag>& tags);
  Status Insert(const std::string& table, Row row);
  Result<size_t> Update(const std::string& table, const AccessPath& path,
                        const PredicatePtr& where,
                        const std::vector<std::pair<ColumnId, Value>>& sets);
  Result<size_t> Delete(const std::string& table, const AccessPath& path,
                        const PredicatePtr& where);

  // --- cacheable functions (MAKE-CACHEABLE) ---
  // Declared here, defined in cacheable_function.h to keep template machinery out of the way:
  //   template <typename Ret, typename... Args>
  //   CacheableFunction<Ret, Args...> MakeCacheable(std::string name,
  //                                                 std::function<Ret(Args...)> fn);
  template <typename Ret, typename... Args, typename Fn>
  auto MakeCacheable(std::string name, Fn&& fn);

  // --- cacheable-call plumbing (used by CacheableFunction; not application-facing) ---
  bool ShouldUseCache() const { return state_ == TxnState::kReadOnly && options_.mode != ClientMode::kNoCache; }
  bool ShouldTryRwCacheRead() const {
    return state_ == TxnState::kReadWrite && options_.allow_rw_cache_reads &&
           options_.mode != ClientMode::kNoCache;
  }
  // `function` is the MAKE-CACHEABLE name the key was built from, when the caller has it
  // (CacheableFunction does): advisory hints on the response are then recorded without
  // re-parsing the key's function prefix. Null: the prefix is parsed on demand.
  Result<CachedValue> CacheLookup(const std::string& key,
                                  const std::string* function = nullptr);
  // Batched variant: resolves `keys` in one MULTILOOKUP round-trip per cache node (the
  // cluster groups keys per owning node). Results are positionally aligned with `keys`.
  // Pin-set narrowing is threaded through the responses in order: each hit narrows the pin
  // set exactly as a standalone lookup would, and a hit whose interval no longer intersects
  // the (already narrowed) pin set is demoted to a consistency miss. Because every entry is
  // probed with the bounds the pin set had when the batch was issued, a batch can classify a
  // borderline entry as a miss where sequential lookups (whose later probes carry narrower
  // bounds) might have found an older compatible version — never the reverse, so consistency
  // is unaffected; only the hit rate can differ marginally.
  std::vector<Result<CachedValue>> CacheMultiLookup(const std::vector<std::string>& keys,
                                                    const std::string* function = nullptr);
  // Lookup restricted to values valid at the read/write transaction's snapshot (§2.2
  // extension). Never narrows any pin set; never inserts.
  Result<CachedValue> RwCacheLookup(const std::string& key,
                                    const std::string* function = nullptr);
  void FrameBegin();
  FrameOutcome FrameEnd();
  void FrameAbandon();
  void CacheStore(const std::string& key, std::string value, const FrameOutcome& outcome,
                  const std::string* function = nullptr);
  void CountCacheableCall() { ++stats_.cacheable_calls; }
  void CountBypassedCall() { ++stats_.bypassed_calls; }

  // Merged advisory hints observed from the cache fleet for a MAKE-CACHEABLE function
  // (updated from Lookup/Insert responses; see AdvisoryHints for what a caller may and may
  // not assume). Observations are kept per responding NODE and merged here: decline_rate is
  // the max across nodes (one node refusing this function's fills is already a reason to
  // shrink them), learned_lifetime_us and observed_bpb are weighted by each node's share of
  // the function's observed traffic. Last-writer-wins across nodes — the previous behavior —
  // made the hints flap with routing: under hot-key replication or a sharded key space,
  // consecutive responses come from different nodes with different learned state, and
  // whichever answered last erased the rest. nullopt until any response for the function
  // carried hints. Thread-safe.
  std::optional<AdvisoryHints> AdvisoryHintsFor(const std::string& function) const;

  // Records the advisory snapshot a response carried (no-op on null), bucketed under the
  // responding node (`served_by`; empty for direct/unrouted responses, which share one
  // bucket). `function` is the caller-known MAKE-CACHEABLE name; when null it is parsed
  // from the key's prefix. Called internally from every lookup/insert response; public so
  // out-of-band drivers (and the hints-merge regression tests) can feed observations.
  void ObserveHints(const std::string& key, const std::string* function,
                    const std::string& served_by,
                    const std::shared_ptr<const AdvisoryHints>& hints);

  ClientStats stats() const { return stats_.Snapshot(); }  // safe under concurrent load
  void ResetStats() { stats_.Reset(); }
  const PinSet& pin_set() const { return pin_set_; }  // exposed for invariant tests
  std::optional<Timestamp> chosen_timestamp() const { return chosen_ts_; }
  const Options& options() const { return options_; }
  // Newest membership epoch observed on any cluster response — the client's view of the
  // fleet; ClientStats::ring_epoch_changes counts how often it moved (re-route events).
  uint64_t ring_epoch() const { return ring_epoch_.load(std::memory_order_relaxed); }

 private:
  enum class TxnState : uint8_t {
    kNone,
    kReadOnly,
    kReadWrite,     // legacy BEGIN-RW: bypasses the cache entirely (§2.2)
    kOptimisticRw,  // BeginRw: reads through the cache, commit-time read validation
  };

  // Shared body of ExecuteQuery/ExecuteQueryTagged: null override_tags means "use the
  // executor's observed tags".
  Result<QueryResult> ExecuteQueryInternal(const Query& query,
                                           const std::vector<InvalidationTag>* override_tags);
  // Makes sure the pin set holds at least one concrete pin (pinning a fresh snapshot if the
  // pincushion had nothing fresh enough), so cache lookups have usable bounds (§5.4).
  Status EnsurePinnedSnapshot();
  // Bounds a cache lookup probes, derived from the pin set / chosen timestamp (§6.2).
  void LookupBounds(Timestamp* lo, Timestamp* hi) const;
  void RecordMiss(MissKind kind);
  // Folds a response's membership epoch into our routing view; a change is a re-route event.
  void ObserveRingEpoch(uint64_t epoch);
  // Lazily begins the underlying database transaction, choosing the serialization timestamp
  // from the pin set per the §6.2 policy.
  Status EnsureDbTxn();
  PinInfo PinNewSnapshot();
  void PropagateToFrames(const Interval& validity, const std::vector<InvalidationTag>& tags);
  void EndTransactionCleanup();
  // Releases every intent this optimistic transaction acquired (no-op otherwise). Safe on any
  // path — commit, abort, destructor — and against crashed owners, whose intents were already
  // dropped wholesale (release answers kUnavailable, a vacuous success).
  void ReleaseRwIntents();
  // Sleeps (or invokes Options::rw_backoff_sleep with) the capped-exponential jittered delay
  // for retry round `attempt`.
  void RwBackoff(uint64_t attempt);

  Database* db_;
  Pincushion* pincushion_;
  CacheCluster* cache_;
  const Clock* clock_;
  Options options_;

  TxnState state_ = TxnState::kNone;
  WallClock staleness_ = 0;
  PinSet pin_set_;
  std::vector<PinInfo> acquired_pins_;  // released to the pincushion at transaction end
  std::optional<TxnId> db_txn_;
  std::optional<Timestamp> chosen_ts_;
  std::vector<Frame> frames_;

  // Optimistic read-write transaction state (kOptimisticRw only). The read set feeds
  // Database::CommitValidated; rw_intents_ remembers the (key, hash) pairs whose advisory
  // intents this transaction acquired, released on every exit path under rw_intent_token_
  // (the transaction id the intents were stamped with). rw_backoff_state_ is the SplitMix64
  // jitter stream, seeded once from Options::rw_backoff_seed.
  Timestamp rw_snapshot_ = kTimestampZero;
  std::vector<ReadValidationEntry> rw_read_set_;
  std::vector<std::pair<std::string, uint64_t>> rw_intents_;
  uint64_t rw_intent_token_ = 0;
  uint64_t rw_backoff_state_ = 0;

  AtomicClientStats stats_;
  std::atomic<uint64_t> ring_epoch_{0};  // newest membership epoch observed (0 = none yet)

  // Advisory hints per function, bucketed per responding node (AdvisoryHintsFor merges the
  // buckets; observations counts the responses that fed each one, weighting the merge by the
  // node's share of the function's traffic). Mutex-guarded because benchmarks/monitors may
  // read while the session runs; bounded like the server's profile maps so raw ad-hoc keys
  // cannot grow it without bound.
  struct NodeHintObservation {
    AdvisoryHints hints;
    uint64_t observations = 0;
  };
  static constexpr size_t kMaxHintFunctions = 1024;
  mutable std::mutex hints_mu_;
  std::unordered_map<std::string, std::unordered_map<std::string, NodeHintObservation>>
      observed_hints_;
};

}  // namespace txcache

#endif  // SRC_CORE_TXCACHE_CLIENT_H_
