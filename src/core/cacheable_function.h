// MAKE-CACHEABLE (paper §2.1): wraps a pure function so that calls are transparently memoized
// through the cache with full transactional consistency.
//
// The cache key is derived from the function's registered name plus the deterministic binary
// serialization of its arguments — the application never chooses keys (a documented source of
// MediaWiki bugs the paper cites). The result type must be Serde-serializable.
//
// Automatic management: every miss fill runs inside a frame (FrameGuard below), and the frame
// meters what the fill cost — wall-clock elapsed plus weighted database work. The measured
// cost ships with the insert, where the cache's cost-aware policy uses benefit-per-byte to
// decide admission and eviction; the application never annotates anything. The function name
// is the cost-accounting bucket (CacheKeyFunction parses it back out of the key), so per-
// function profiles in CacheServer::FunctionStats() line up 1:1 with MakeCacheable calls.
#ifndef SRC_CORE_CACHEABLE_FUNCTION_H_
#define SRC_CORE_CACHEABLE_FUNCTION_H_

#include <functional>
#include <optional>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "src/core/txcache_client.h"
#include "src/util/serde.h"

namespace txcache {

// Deterministic cache key: function name, NUL, serialized arguments.
template <typename... Args>
std::string MakeCacheKey(const std::string& name, const Args&... args) {
  Writer w;
  w.PutString(name);
  (SerializeValue(w, args), ...);
  return w.Take();
}

// Pops the frame on exceptions so a throwing cacheable function cannot corrupt the stack.
class FrameGuard {
 public:
  explicit FrameGuard(TxCacheClient* client) : client_(client) { client_->FrameBegin(); }
  ~FrameGuard() {
    if (!finished_) {
      client_->FrameAbandon();
    }
  }
  FrameGuard(const FrameGuard&) = delete;
  FrameGuard& operator=(const FrameGuard&) = delete;

  FrameOutcome Finish() {
    finished_ = true;
    return client_->FrameEnd();
  }

 private:
  TxCacheClient* client_;
  bool finished_ = false;
};

template <typename Ret, typename... Args>
class CacheableFunction {
 public:
  CacheableFunction() = default;
  CacheableFunction(TxCacheClient* client, std::string name, std::function<Ret(Args...)> fn)
      : client_(client), name_(std::move(name)), fn_(std::move(fn)) {}

  Ret operator()(const Args&... args) const {
    // Outside a read-only transaction (or in no-cache mode) the implementation runs directly:
    // read/write transactions bypass the cache entirely (§2.2) — unless the application opted
    // into RW cache reads, in which case values valid at the RW snapshot may be served (with
    // the documented own-writes anomaly), but results are never stored.
    if (client_ == nullptr || !client_->ShouldUseCache()) {
      if (client_ != nullptr) {
        if (client_->in_optimistic_rw()) {
          // Optimistic read-write transaction: read through the cache with the read recorded
          // for commit-time validation. On a miss — or an early intent conflict, which this
          // interface cannot surface as a status — recompute at the snapshot; the engine
          // tag-tracks those reads into the same read set, so commit validation protects the
          // recompute exactly as it would the hit. Results are never stored (our own
          // uncommitted writes may have dirtied them).
          client_->CountCacheableCall();
          auto hit = client_->ReadInTx(MakeCacheKey(name_, args...), &name_);
          if (hit.ok()) {
            auto decoded = DeserializeFromString<Ret>(*hit.value());
            if (decoded.ok()) {
              return decoded.take();
            }
          }
          return fn_(args...);
        }
        if (client_->ShouldTryRwCacheRead()) {
          client_->CountCacheableCall();
          auto hit = client_->RwCacheLookup(MakeCacheKey(name_, args...), &name_);
          if (hit.ok()) {
            // Deserialize straight out of the zero-copy alias of the cache-resident buffer.
            auto decoded = DeserializeFromString<Ret>(*hit.value());
            if (decoded.ok()) {
              return decoded.take();
            }
          }
          return fn_(args...);
        }
        client_->CountBypassedCall();
      }
      return fn_(args...);
    }
    client_->CountCacheableCall();
    const std::string key = MakeCacheKey(name_, args...);
    auto hit = client_->CacheLookup(key, &name_);
    if (hit.ok()) {
      auto decoded = DeserializeFromString<Ret>(*hit.value());
      if (decoded.ok()) {
        return decoded.take();
      }
      // Corrupt or incompatible payload (e.g. after a software update changed Ret): fall
      // through and recompute; the insert below will collide with the stored version and be
      // dropped, but the caller still gets a correct answer.
    }
    FrameGuard guard(client_);
    Ret ret = fn_(args...);
    FrameOutcome outcome = guard.Finish();
    client_->CacheStore(key, SerializeToString(ret), outcome, &name_);
    return ret;
  }

  // Batched call: when one logical operation fans out to many keys (a page rendering N items,
  // a feed resolving N users), resolve every argument tuple through a single MULTILOOKUP
  // round-trip per cache node instead of one per key. Misses are recomputed and stored
  // individually, and pin-set narrowing threads through the batched responses in order, so
  // the transactional-consistency guarantees are identical to sequential calls. Results are
  // positionally aligned with `calls`.
  std::vector<Ret> Batch(const std::vector<std::tuple<Args...>>& calls) const {
    std::vector<Ret> out;
    out.reserve(calls.size());
    if (client_ == nullptr || !client_->ShouldUseCache()) {
      // Degenerate to per-element calls, which keep the RW-bypass / no-cache semantics.
      for (const auto& call : calls) {
        out.push_back(std::apply(*this, call));
      }
      return out;
    }
    std::vector<std::string> keys;
    keys.reserve(calls.size());
    for (const auto& call : calls) {
      client_->CountCacheableCall();
      keys.push_back(std::apply(
          [this](const Args&... args) { return MakeCacheKey(name_, args...); }, call));
    }
    std::vector<Result<TxCacheClient::CachedValue>> hits =
        client_->CacheMultiLookup(keys, &name_);
    for (size_t i = 0; i < calls.size(); ++i) {
      if (hits[i].ok()) {
        auto decoded = DeserializeFromString<Ret>(*hits[i].value());
        if (decoded.ok()) {
          out.push_back(decoded.take());
          continue;
        }
      }
      FrameGuard guard(client_);
      Ret ret = std::apply(fn_, calls[i]);
      FrameOutcome outcome = guard.Finish();
      client_->CacheStore(keys[i], SerializeToString(ret), outcome, &name_);
      out.push_back(std::move(ret));
    }
    return out;
  }

  const std::string& name() const { return name_; }

  // Latest advisory hints the cache fleet published for this function, as observed on this
  // client's lookup/insert responses (automatic-management feedback loop). Call sites may use
  // them to adapt fill sizing (shrink results whose decline_rate says the cache refuses
  // them) or re-fetch pacing (learned_lifetime_us says how long results actually live) —
  // never to reason about validity; see AdvisoryHints in cache_types.h for the contract.
  std::optional<AdvisoryHints> hints() const {
    return client_ == nullptr ? std::nullopt : client_->AdvisoryHintsFor(name_);
  }

 private:
  TxCacheClient* client_ = nullptr;
  std::string name_;
  std::function<Ret(Args...)> fn_;
};

template <typename Ret, typename... Args, typename Fn>
auto TxCacheClient::MakeCacheable(std::string name, Fn&& fn) {
  return CacheableFunction<Ret, Args...>(this, std::move(name),
                                         std::function<Ret(Args...)>(std::forward<Fn>(fn)));
}

}  // namespace txcache

#endif  // SRC_CORE_CACHEABLE_FUNCTION_H_
