#include "src/cluster/consistent_hash.h"

#include <algorithm>

namespace txcache {

bool ConsistentHashRing::AddNode(const std::string& name) {
  if (nodes_.contains(name)) {
    return false;
  }
  std::vector<uint64_t>& positions = nodes_[name];
  positions.reserve(virtual_nodes_);
  uint64_t h = Fnv1a(name);
  for (size_t i = 0; i < virtual_nodes_; ++i) {
    // Derive virtual-node positions by mixing the node hash with the replica index; probe
    // forward on the (unlikely) event of a collision with an existing position.
    uint64_t pos = Mix64(h ^ (0x9e3779b97f4a7c15ull * (i + 1)));
    while (ring_.contains(pos)) {
      ++pos;
    }
    ring_.emplace(pos, name);
    positions.push_back(pos);
  }
  ++epoch_;
  return true;
}

bool ConsistentHashRing::RemoveNode(const std::string& name) {
  auto it = nodes_.find(name);
  if (it == nodes_.end()) {
    return false;
  }
  for (uint64_t pos : it->second) {
    ring_.erase(pos);
  }
  nodes_.erase(it);
  ++epoch_;
  return true;
}

bool ConsistentHashRing::HasNode(const std::string& name) const { return nodes_.contains(name); }

Result<std::string> ConsistentHashRing::NodeForKey(uint64_t key_hash) const {
  if (ring_.empty()) {
    return Status::Unavailable("no cache nodes in ring");
  }
  auto it = ring_.lower_bound(Mix64(key_hash));
  if (it == ring_.end()) {
    it = ring_.begin();  // wrap around
  }
  return it->second;
}

std::vector<std::string> ConsistentHashRing::ReplicasForHash(uint64_t key_hash,
                                                             size_t replicas) const {
  std::vector<std::string> out;
  if (ring_.empty() || replicas == 0) {
    return out;
  }
  out.reserve(std::min(replicas, nodes_.size()));
  auto it = ring_.lower_bound(Mix64(key_hash));
  if (it == ring_.end()) {
    it = ring_.begin();
  }
  // Walk successive virtual-node positions, wrapping once around the ring at most: each
  // DISTINCT node encountered is the next replica. Adjacent positions often belong to the
  // same node, so the linear membership test over the small `out` beats a hash set here.
  for (size_t steps = 0; steps < ring_.size() && out.size() < replicas; ++steps) {
    const std::string& node = it->second;
    bool seen = false;
    for (const std::string& have : out) {
      if (have == node) {
        seen = true;
        break;
      }
    }
    if (!seen) {
      out.push_back(node);
    }
    if (++it == ring_.end()) {
      it = ring_.begin();
    }
  }
  return out;
}

Result<std::map<std::string, std::vector<uint32_t>>> ConsistentHashRing::GroupByNode(
    const std::vector<uint64_t>& key_hashes) const {
  if (ring_.empty()) {
    return Status::Unavailable("no cache nodes in ring");
  }
  // Even-split reservation hint: a node's group growing once on first touch beats every
  // group growing log(n) times.
  const size_t per_node_hint = key_hashes.size() / nodes_.size() + 1;
  std::map<std::string, std::vector<uint32_t>> groups;
  for (uint32_t i = 0; i < key_hashes.size(); ++i) {
    auto node_or = NodeForKey(key_hashes[i]);
    if (!node_or.ok()) {
      return node_or.status();
    }
    std::vector<uint32_t>& group = groups[node_or.value()];
    if (group.empty()) {
      group.reserve(per_node_hint + 3);
    }
    group.push_back(i);
  }
  return groups;
}

Result<std::map<std::string, std::vector<uint32_t>>> ConsistentHashRing::GroupByNode(
    const std::vector<std::string_view>& keys) const {
  std::vector<uint64_t> hashes;
  hashes.reserve(keys.size());
  for (std::string_view key : keys) {
    hashes.push_back(Fnv1a(key));
  }
  return GroupByNode(hashes);
}

std::vector<std::string> ConsistentHashRing::Nodes() const {
  std::vector<std::string> out;
  out.reserve(nodes_.size());
  for (const auto& [name, _] : nodes_) {
    out.push_back(name);
  }
  return out;
}

}  // namespace txcache
