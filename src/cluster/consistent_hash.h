// Consistent hashing over cache nodes (paper §4), with dynamic membership.
//
// Keys are partitioned among cache nodes with a consistent-hash ring: every application node
// knows the full node list and maps a key to its node directly. Virtual nodes smooth the
// distribution; adding or removing a node remaps only ~1/n of the key space, which tests
// verify. Every successful membership change bumps a monotone **epoch**; the cluster stamps
// the epoch on lookup/insert responses so clients can detect that their routing state went
// stale and refresh it instead of erroring.
#ifndef SRC_CLUSTER_CONSISTENT_HASH_H_
#define SRC_CLUSTER_CONSISTENT_HASH_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/hash.h"
#include "src/util/status.h"

namespace txcache {

class ConsistentHashRing {
 public:
  explicit ConsistentHashRing(size_t virtual_nodes_per_node = 64)
      : virtual_nodes_(virtual_nodes_per_node) {}

  // Adds a node identified by name. Returns false if already present. Successful add/remove
  // calls bump the membership epoch.
  bool AddNode(const std::string& name);
  bool RemoveNode(const std::string& name);
  bool HasNode(const std::string& name) const;

  // Monotone membership-change counter: 0 for an empty never-touched ring, +1 per successful
  // AddNode/RemoveNode. Two ring instances that saw the same sequence of changes agree on it.
  uint64_t epoch() const { return epoch_; }

  // Maps a key (by 64-bit hash) to the owning node. Empty ring => error.
  Result<std::string> NodeForKey(uint64_t key_hash) const;
  Result<std::string> NodeForKey(const std::string& key) const {
    return NodeForKey(Fnv1a(key));
  }

  // The hash's primary owner followed by up to `replicas - 1` DISTINCT successor nodes,
  // walking the ring clockwise from the hash position (the standard successor-list placement:
  // the same walk every node computes, so replica sets agree fleet-wide without coordination).
  // Fewer than `replicas` entries when the ring holds fewer distinct nodes; empty ring =>
  // empty vector. The front entry always equals NodeForKey(key_hash).
  std::vector<std::string> ReplicasForHash(uint64_t key_hash, size_t replicas) const;

  // Batch routing for the batched lookup pipeline: maps every key to its owning node in one
  // pass, returning request positions grouped per node (preserving per-node request order).
  // The hash form is the hot path — callers carry each key's Fnv1a hash (hash-once contract,
  // see LookupRequest::key_hash) so routing neither rehashes nor materializes key copies; the
  // view form is the convenience wrapper that hashes for you. Empty ring => error.
  Result<std::map<std::string, std::vector<uint32_t>>> GroupByNode(
      const std::vector<uint64_t>& key_hashes) const;
  Result<std::map<std::string, std::vector<uint32_t>>> GroupByNode(
      const std::vector<std::string_view>& keys) const;

  size_t node_count() const { return nodes_.size(); }
  size_t ring_size() const { return ring_.size(); }
  std::vector<std::string> Nodes() const;

 private:
  size_t virtual_nodes_;
  uint64_t epoch_ = 0;
  std::map<uint64_t, std::string> ring_;  // position -> node name
  std::map<std::string, std::vector<uint64_t>> nodes_;  // node -> its ring positions
};

}  // namespace txcache

#endif  // SRC_CLUSTER_CONSISTENT_HASH_H_
