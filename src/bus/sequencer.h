// Per-node invalidation-stream sequencer (paper §4.2).
//
// The invalidation stream must be applied in strict sequence-number order, but the transport
// (the bus in tests, Census-style multicast in the paper) may deliver out of order. The
// sequencer owns the node's stream position: duplicates are dropped, gaps are held in a
// reorder buffer, and each message is released to the sink exactly once, in order, under the
// sequencer's lock — so the sink observes a totally ordered stream no matter how many threads
// call Deliver concurrently.
//
// Extracted from CacheServer so the sharded cache node can stamp each message once and fan it
// out to its shards: the sink runs before Deliver returns, and no two sink invocations
// overlap, which is what preserves the per-shard seqno-order guarantee.
#ifndef SRC_BUS_SEQUENCER_H_
#define SRC_BUS_SEQUENCER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <utility>

#include "src/bus/invalidation.h"

namespace txcache {

class StreamSequencer {
 public:
  // fn(msg): invoked in strict seqno order, serialized under the sequencer's lock.
  using Sink = std::function<void(const InvalidationMessage&)>;

  explicit StreamSequencer(Sink sink) : sink_(std::move(sink)) {}

  StreamSequencer(const StreamSequencer&) = delete;
  StreamSequencer& operator=(const StreamSequencer&) = delete;

  // Feeds one (possibly out-of-order, possibly duplicate) message. Releases every in-order
  // message — this one and any buffered successors it unblocks — to the sink before returning.
  void Deliver(const InvalidationMessage& msg) {
    std::lock_guard<std::mutex> lock(mu_);
    if (msg.seqno < next_expected_seqno_) {
      return;  // duplicate
    }
    if (msg.seqno > next_expected_seqno_) {
      buffer_.emplace(msg.seqno, msg);
      ++reorder_buffered_;
      return;
    }
    sink_(msg);
    ++next_expected_seqno_;
    auto it = buffer_.begin();
    while (it != buffer_.end() && it->first == next_expected_seqno_) {
      sink_(it->second);
      ++next_expected_seqno_;
      it = buffer_.erase(it);
    }
  }

  // Fast-forwards the stream position (cache snapshot import, flush-rejoin): adopts
  // `next_seqno` if it is ahead of ours and drops buffered messages the new position has
  // already covered. Buffered messages at or after the adopted position are released to the
  // sink immediately: they arrived live while the position was being adopted, nothing will
  // ever re-deliver them, and leaving the one at exactly `next_seqno` behind would stall the
  // stream forever (every later message would wait on a gap that can no longer fill).
  void AdoptPosition(uint64_t next_seqno) {
    std::lock_guard<std::mutex> lock(mu_);
    if (next_seqno <= next_expected_seqno_) {
      return;
    }
    next_expected_seqno_ = next_seqno;
    buffer_.erase(buffer_.begin(), buffer_.lower_bound(next_seqno));
    auto it = buffer_.begin();
    while (it != buffer_.end() && it->first == next_expected_seqno_) {
      sink_(it->second);
      ++next_expected_seqno_;
      it = buffer_.erase(it);
    }
  }

  uint64_t next_expected_seqno() const {
    std::lock_guard<std::mutex> lock(mu_);
    return next_expected_seqno_;
  }

  // Stat: messages that arrived out of order and had to wait (cumulative).
  uint64_t reorder_buffered() const {
    std::lock_guard<std::mutex> lock(mu_);
    return reorder_buffered_;
  }

  void ResetStats() {
    std::lock_guard<std::mutex> lock(mu_);
    reorder_buffered_ = 0;
  }

  size_t pending() const {
    std::lock_guard<std::mutex> lock(mu_);
    return buffer_.size();
  }

 private:
  mutable std::mutex mu_;
  uint64_t next_expected_seqno_ = 1;
  uint64_t reorder_buffered_ = 0;
  std::map<uint64_t, InvalidationMessage> buffer_;
  Sink sink_;
};

}  // namespace txcache

#endif  // SRC_BUS_SEQUENCER_H_
