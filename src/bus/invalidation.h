// Invalidation tags and the invalidation-stream message format (paper §4.2, §5.3).
//
// A tag names a database dependency at one of two granularities:
//   * concrete:  TABLE:INDEX=KEY — "the set of tuples in TABLE with KEY in INDEX"
//   * wildcard:  TABLE:?         — "anything in TABLE"
// The database attaches tags to query results (based on the access methods the executor used)
// and, at commit time of a read/write transaction, emits one InvalidationMessage carrying the
// transaction's commit timestamp and every tag it affected. Cache nodes apply messages in
// timestamp order, truncating the validity interval of matching still-valid entries.
#ifndef SRC_BUS_INVALIDATION_H_
#define SRC_BUS_INVALIDATION_H_

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "src/util/hash.h"
#include "src/util/types.h"

namespace txcache {

struct InvalidationTag {
  std::string table;
  std::string index;  // empty iff wildcard
  std::string key;    // serialized index key; empty iff wildcard
  bool wildcard = false;

  static InvalidationTag Concrete(std::string table, std::string index, std::string key) {
    return InvalidationTag{std::move(table), std::move(index), std::move(key), false};
  }
  static InvalidationTag Wildcard(std::string table) {
    return InvalidationTag{std::move(table), "", "", true};
  }

  bool operator==(const InvalidationTag& o) const = default;
  bool operator<(const InvalidationTag& o) const {
    return std::tie(table, wildcard, index, key) < std::tie(o.table, o.wildcard, o.index, o.key);
  }

  uint64_t Hash() const {
    uint64_t h = Fnv1a(table);
    h = Fnv1a(index, h);
    h = Fnv1a(key, h);
    return Mix64(h ^ (wildcard ? 0x9e3779b97f4a7c15ull : 0));
  }

  // Human-readable form, e.g. "users:idx_users_id=\x07" or "items:?".
  std::string ToString() const;

  // Serde hook (src/util/serde.h): tags ride insert RPCs and invalidation pushes.
  template <typename F>
  void ForEachField(F&& f) {
    f(table);
    f(index);
    f(key);
    f(wildcard);
  }
  template <typename F>
  void ForEachField(F&& f) const {
    f(table);
    f(index);
    f(key);
    f(wildcard);
  }
};

struct TagHasher {
  size_t operator()(const InvalidationTag& t) const { return static_cast<size_t>(t.Hash()); }
};

// One entry in the invalidation stream: all tags affected by a single update transaction.
struct InvalidationMessage {
  uint64_t seqno = 0;  // assigned by the bus; contiguous per stream
  Timestamp ts = kTimestampZero;
  WallClock wallclock = 0;
  std::vector<InvalidationTag> tags;

  // Serde hook (src/util/serde.h): messages are delivered over the wire to remote nodes.
  template <typename F>
  void ForEachField(F&& f) {
    f(seqno);
    f(ts);
    f(wallclock);
    f(tags);
  }
  template <typename F>
  void ForEachField(F&& f) const {
    f(seqno);
    f(ts);
    f(wallclock);
    f(tags);
  }
};

}  // namespace txcache

#endif  // SRC_BUS_INVALIDATION_H_
