// In-process stand-in for the reliable application-level multicast the paper uses (Census) to
// carry the invalidation stream from the database to every cache node.
//
// The bus assigns contiguous sequence numbers at publish time (the database publishes while
// holding its commit lock, so seqno order == commit-timestamp order). Delivery is pluggable: by
// default messages are handed to subscribers synchronously, but the simulator installs a
// delivery hook that routes each (subscriber, message) pair through the event queue with
// per-link latency — including out-of-order delivery in fault-injection tests, which the cache
// node's reorder buffer must absorb.
//
// Membership support: the bus retains a bounded history of recently published messages. A
// cache node rejoining after a crash or partition asks ReplayFrom(position) to re-deliver the
// messages it missed; when the bounded history no longer reaches back that far, the call fails
// and the node must flush instead (see CacheServer::Join for the decision rule).
#ifndef SRC_BUS_BUS_H_
#define SRC_BUS_BUS_H_

#include <algorithm>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

#include "src/bus/invalidation.h"
#include "src/util/status.h"
#include "src/util/types.h"

namespace txcache {

class InvalidationSubscriber {
 public:
  virtual ~InvalidationSubscriber() = default;
  virtual void Deliver(const InvalidationMessage& msg) = 0;
};

class InvalidationBus {
 public:
  InvalidationBus() = default;
  // How many recently published messages to retain for rejoin catch-up. The bound caps the
  // memory the stream source spends on departed nodes: a node that was down longer than the
  // history covers has to rebuild from scratch instead.
  explicit InvalidationBus(size_t history_limit) : history_limit_(history_limit) {}

  // fn(subscriber, msg): responsible for eventually calling subscriber->Deliver(msg).
  using DeliveryHook =
      std::function<void(InvalidationSubscriber* subscriber, const InvalidationMessage& msg)>;

  // Idempotent: re-subscribing an already-registered node (a rejoin) is a no-op.
  void Subscribe(InvalidationSubscriber* subscriber) {
    std::lock_guard<std::mutex> lock(mu_);
    if (std::find(subscribers_.begin(), subscribers_.end(), subscriber) == subscribers_.end()) {
      subscribers_.push_back(subscriber);
    }
  }

  // Permanent departure (a decommissioned node, or a test tearing one down while the bus
  // lives on). A crashed node stays subscribed: it drops deliveries itself while down.
  void Unsubscribe(InvalidationSubscriber* subscriber) {
    std::lock_guard<std::mutex> lock(mu_);
    subscribers_.erase(std::remove(subscribers_.begin(), subscribers_.end(), subscriber),
                       subscribers_.end());
  }

  void SetDeliveryHook(DeliveryHook hook) {
    std::lock_guard<std::mutex> lock(mu_);
    hook_ = std::move(hook);
  }

  // Stamps the message with the next sequence number and delivers it to every subscriber.
  // Returns the assigned seqno.
  uint64_t Publish(InvalidationMessage msg) {
    std::vector<InvalidationSubscriber*> subs;
    DeliveryHook hook;
    {
      std::lock_guard<std::mutex> lock(mu_);
      msg.seqno = next_seqno_++;
      last_published_ts_ = std::max(last_published_ts_, msg.ts);
      history_.push_back(msg);
      while (history_.size() > history_limit_) {
        history_.pop_front();
      }
      subs = subscribers_;
      hook = hook_;
    }
    for (InvalidationSubscriber* s : subs) {
      if (hook) {
        hook(s, msg);
      } else {
        s->Deliver(msg);
      }
    }
    return msg.seqno;
  }

  // Re-delivers every retained message with seqno >= from_seqno to one subscriber (rejoin
  // catch-up). Messages flow through the delivery hook exactly like live traffic, so the
  // simulator's latency (and a test's holding hook) applies — the joining node stays behind
  // its barrier until they actually arrive. Fails with kUnavailable when the bounded history
  // has been truncated past from_seqno; the caller must flush instead of catching up.
  Status ReplayFrom(InvalidationSubscriber* subscriber, uint64_t from_seqno) {
    std::vector<InvalidationMessage> missed;
    DeliveryHook hook;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (from_seqno < history_floor_seqno_locked()) {
        return Status::Unavailable("invalidation history truncated before requested position");
      }
      for (const InvalidationMessage& msg : history_) {
        if (msg.seqno >= from_seqno) {
          missed.push_back(msg);
        }
      }
      hook = hook_;
    }
    for (const InvalidationMessage& msg : missed) {
      if (hook) {
        hook(subscriber, msg);
      } else {
        subscriber->Deliver(msg);
      }
    }
    return Status::Ok();
  }

  uint64_t next_seqno() const {
    std::lock_guard<std::mutex> lock(mu_);
    return next_seqno_;
  }

  // Oldest seqno the bounded history still covers (== next_seqno when nothing is retained).
  uint64_t history_floor_seqno() const {
    std::lock_guard<std::mutex> lock(mu_);
    return history_floor_seqno_locked();
  }

  // Commit timestamp of the newest published message; a flushing joiner adopts it as the
  // conservative bound on what it may have missed.
  Timestamp last_published_ts() const {
    std::lock_guard<std::mutex> lock(mu_);
    return last_published_ts_;
  }

 private:
  uint64_t history_floor_seqno_locked() const {
    return history_.empty() ? next_seqno_ : history_.front().seqno;
  }

  mutable std::mutex mu_;
  uint64_t next_seqno_ = 1;
  size_t history_limit_ = 4096;
  std::deque<InvalidationMessage> history_;
  Timestamp last_published_ts_ = kTimestampZero;
  std::vector<InvalidationSubscriber*> subscribers_;
  DeliveryHook hook_;
};

}  // namespace txcache

#endif  // SRC_BUS_BUS_H_
