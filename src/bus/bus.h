// In-process stand-in for the reliable application-level multicast the paper uses (Census) to
// carry the invalidation stream from the database to every cache node.
//
// The bus assigns contiguous sequence numbers at publish time (the database publishes while
// holding its commit lock, so seqno order == commit-timestamp order). Delivery is pluggable: by
// default messages are handed to subscribers synchronously, but the simulator installs a
// delivery hook that routes each (subscriber, message) pair through the event queue with
// per-link latency — including out-of-order delivery in fault-injection tests, which the cache
// node's reorder buffer must absorb.
#ifndef SRC_BUS_BUS_H_
#define SRC_BUS_BUS_H_

#include <functional>
#include <mutex>
#include <vector>

#include "src/bus/invalidation.h"

namespace txcache {

class InvalidationSubscriber {
 public:
  virtual ~InvalidationSubscriber() = default;
  virtual void Deliver(const InvalidationMessage& msg) = 0;
};

class InvalidationBus {
 public:
  // fn(subscriber, msg): responsible for eventually calling subscriber->Deliver(msg).
  using DeliveryHook =
      std::function<void(InvalidationSubscriber* subscriber, const InvalidationMessage& msg)>;

  void Subscribe(InvalidationSubscriber* subscriber) {
    std::lock_guard<std::mutex> lock(mu_);
    subscribers_.push_back(subscriber);
  }

  void SetDeliveryHook(DeliveryHook hook) {
    std::lock_guard<std::mutex> lock(mu_);
    hook_ = std::move(hook);
  }

  // Stamps the message with the next sequence number and delivers it to every subscriber.
  // Returns the assigned seqno.
  uint64_t Publish(InvalidationMessage msg) {
    std::vector<InvalidationSubscriber*> subs;
    DeliveryHook hook;
    {
      std::lock_guard<std::mutex> lock(mu_);
      msg.seqno = next_seqno_++;
      subs = subscribers_;
      hook = hook_;
    }
    for (InvalidationSubscriber* s : subs) {
      if (hook) {
        hook(s, msg);
      } else {
        s->Deliver(msg);
      }
    }
    return msg.seqno;
  }

  uint64_t next_seqno() const {
    std::lock_guard<std::mutex> lock(mu_);
    return next_seqno_;
  }

 private:
  mutable std::mutex mu_;
  uint64_t next_seqno_ = 1;
  std::vector<InvalidationSubscriber*> subscribers_;
  DeliveryHook hook_;
};

}  // namespace txcache

#endif  // SRC_BUS_BUS_H_
