#include "src/bus/invalidation.h"

#include <sstream>

namespace txcache {
namespace {

// Keys are serialized bytes; render non-printable characters as \xNN for logs and tests.
std::string EscapeKey(const std::string& key) {
  std::ostringstream os;
  for (char c : key) {
    if (c >= 0x20 && c < 0x7f && c != '\\') {
      os << c;
    } else {
      static const char* kHex = "0123456789abcdef";
      os << "\\x" << kHex[(c >> 4) & 0xf] << kHex[c & 0xf];
    }
  }
  return os.str();
}

}  // namespace

std::string InvalidationTag::ToString() const {
  if (wildcard) {
    return table + ":?";
  }
  return table + ":" + index + "=" + EscapeKey(key);
}

}  // namespace txcache
