#include "src/pincushion/replicated_pincushion.h"

#include <cassert>

namespace txcache {

ReplicatedPincushion::ReplicatedPincushion(Database* db, const Clock* clock, size_t replicas,
                                           Pincushion::Options options)
    : db_(db), clock_(clock), options_(options) {
  assert(replicas >= 1);
  replicas_.reserve(replicas);
  for (size_t i = 0; i < replicas; ++i) {
    Replica r;
    r.pincushion = std::make_unique<Pincushion>(db_, clock_, options_);
    replicas_.push_back(std::move(r));
  }
}

size_t ReplicatedPincushion::PrimaryLocked() const {
  for (size_t i = 0; i < replicas_.size(); ++i) {
    if (replicas_[i].live) {
      return i;
    }
  }
  return 0;  // unreachable while at least one replica is live
}

std::vector<PinInfo> ReplicatedPincushion::AcquireFreshPins(WallClock staleness) {
  std::lock_guard<std::mutex> lock(mu_);
  // The acquire marks pins in use: a write, applied to every live replica. With synchronized
  // state, every replica computes the same answer; the primary's is returned.
  std::vector<PinInfo> result;
  const size_t primary = PrimaryLocked();
  for (size_t i = 0; i < replicas_.size(); ++i) {
    if (!replicas_[i].live) {
      continue;
    }
    std::vector<PinInfo> pins = replicas_[i].pincushion->AcquireFreshPins(staleness);
    if (i == primary) {
      result = std::move(pins);
    }
  }
  return result;
}

std::vector<PinInfo> ReplicatedPincushion::AcquireFreshPinsFrom(size_t index,
                                                                WallClock staleness) {
  std::lock_guard<std::mutex> lock(mu_);
  if (index >= replicas_.size() || !replicas_[index].live) {
    return {};
  }
  std::vector<PinInfo> result;
  for (size_t i = 0; i < replicas_.size(); ++i) {
    if (!replicas_[i].live) {
      continue;
    }
    std::vector<PinInfo> pins = replicas_[i].pincushion->AcquireFreshPins(staleness);
    if (i == index) {
      result = std::move(pins);
    }
  }
  return result;
}

void ReplicatedPincushion::Register(const PinInfo& pin) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Replica& r : replicas_) {
    if (r.live) {
      r.pincushion->Register(pin);
    }
  }
}

void ReplicatedPincushion::Release(const std::vector<PinInfo>& pins) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Replica& r : replicas_) {
    if (r.live) {
      r.pincushion->Release(pins);
    }
  }
}

size_t ReplicatedPincushion::Sweep() {
  std::lock_guard<std::mutex> lock(mu_);
  // Only the primary sweeps (it owns the database UNPINs); backups just drop the same entries
  // from their tables by importing the primary's state afterwards.
  const size_t primary = PrimaryLocked();
  size_t swept = replicas_[primary].pincushion->Sweep();
  if (swept > 0) {
    for (size_t i = 0; i < replicas_.size(); ++i) {
      if (i != primary && replicas_[i].live) {
        ResyncLocked(primary, i);
      }
    }
  }
  return swept;
}

size_t ReplicatedPincushion::pinned_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return replicas_[PrimaryLocked()].pincushion->pinned_count();
}

bool ReplicatedPincushion::FailReplica(size_t index) {
  std::lock_guard<std::mutex> lock(mu_);
  if (index >= replicas_.size() || !replicas_[index].live) {
    return false;
  }
  size_t live = 0;
  for (const Replica& r : replicas_) {
    live += r.live ? 1 : 0;
  }
  if (live <= 1) {
    return false;  // refuse to lose the last copy
  }
  replicas_[index].live = false;
  return true;
}

bool ReplicatedPincushion::RecoverReplica(size_t index) {
  std::lock_guard<std::mutex> lock(mu_);
  if (index >= replicas_.size() || replicas_[index].live) {
    return false;
  }
  // Resolve the state-transfer source BEFORE the replica rejoins: a recovering ex-primary has
  // the lowest index and would otherwise "resync" from itself, resurrecting pins the group
  // already swept (and double-unpinning them later).
  const size_t source = PrimaryLocked();
  replicas_[index].live = true;
  ResyncLocked(source, index);
  return true;
}

size_t ReplicatedPincushion::primary_index() const {
  std::lock_guard<std::mutex> lock(mu_);
  return PrimaryLocked();
}

size_t ReplicatedPincushion::live_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t live = 0;
  for (const Replica& r : replicas_) {
    live += r.live ? 1 : 0;
  }
  return live;
}

void ReplicatedPincushion::ResyncLocked(size_t from, size_t to) {
  if (from == to) {
    return;
  }
  replicas_[to].pincushion->ImportState(replicas_[from].pincushion->ExportState());
}

}  // namespace txcache
