// Replicated pincushion (paper §5.4: "We have also developed a protocol for replicating the
// pincushion to increase its throughput, but it has yet to become necessary").
//
// A primary-backup group: all writes (Register / Acquire's in-use marks / Release) execute on
// the primary and are applied synchronously to every live backup, so any backup can take over
// with the exact pin table. Freshness reads can be served by any replica (they are safe to
// serve slightly stale: handing out a pin that has just been unpinned only costs a failed
// BEGIN SNAPSHOTID and a retry; the client library treats that as "no fresh pins").
//
// Failover: when the primary is marked failed, the lowest-indexed live replica becomes primary.
// Sweeping (which issues UNPINs to the database) runs only on the primary, so a failed replica
// can never unpin snapshots the new primary still tracks.
#ifndef SRC_PINCUSHION_REPLICATED_PINCUSHION_H_
#define SRC_PINCUSHION_REPLICATED_PINCUSHION_H_

#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "src/pincushion/pincushion.h"

namespace txcache {

class ReplicatedPincushion {
 public:
  // Creates a group of `replicas` pincushions over the same database.
  ReplicatedPincushion(Database* db, const Clock* clock, size_t replicas,
                       Pincushion::Options options = Pincushion::Options{});

  // --- the Pincushion interface, routed through the group ---
  std::vector<PinInfo> AcquireFreshPins(WallClock staleness);
  void Register(const PinInfo& pin);
  void Release(const std::vector<PinInfo>& pins);
  size_t Sweep();
  size_t pinned_count() const;

  // --- fault injection (tests / demos) ---
  // Marks a replica failed; its state is frozen and it stops receiving writes. Fails over if it
  // was the primary. Returns false if it was already down or is the only live replica.
  bool FailReplica(size_t index);
  // Brings a failed replica back: its stale state is discarded and resynchronized from the
  // primary before it rejoins.
  bool RecoverReplica(size_t index);

  size_t primary_index() const;
  size_t live_count() const;
  size_t replica_count() const { return replicas_.size(); }

  // Reads served by a specific replica (any live one returns usable results).
  std::vector<PinInfo> AcquireFreshPinsFrom(size_t index, WallClock staleness);

 private:
  struct Replica {
    std::unique_ptr<Pincushion> pincushion;
    bool live = true;
  };

  // All helpers assume mu_ is held.
  size_t PrimaryLocked() const;
  void ResyncLocked(size_t from, size_t to);

  Database* db_;
  const Clock* clock_;
  Pincushion::Options options_;

  mutable std::mutex mu_;
  std::vector<Replica> replicas_;
  size_t next_read_ = 0;  // round-robin for freshness reads
};

}  // namespace txcache

#endif  // SRC_PINCUSHION_REPLICATED_PINCUSHION_H_
