#include "src/pincushion/pincushion.h"

namespace txcache {

std::vector<PinInfo> Pincushion::AcquireFreshPins(WallClock staleness) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.fresh_requests;
  const WallClock cutoff = clock_->Now() - staleness;
  std::vector<PinInfo> out;
  for (auto& [ts, entry] : pins_) {
    if (entry.pinned_at >= cutoff) {
      ++entry.in_use;
      out.push_back(PinInfo{ts, entry.pinned_at});
      ++stats_.pins_handed_out;
    }
  }
  return out;
}

void Pincushion::Register(const PinInfo& pin) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = pins_[pin.ts];
  if (entry.db_pin_count == 0) {
    entry.pinned_at = pin.pinned_at;
  }
  ++entry.db_pin_count;
  ++entry.in_use;
  ++stats_.registrations;
}

void Pincushion::Release(const std::vector<PinInfo>& pins) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const PinInfo& pin : pins) {
    auto it = pins_.find(pin.ts);
    if (it != pins_.end() && it->second.in_use > 0) {
      --it->second.in_use;
    }
  }
}

size_t Pincushion::Sweep() {
  std::vector<std::pair<Timestamp, int>> to_unpin;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.sweeps;
    const WallClock cutoff = clock_->Now() - options_.unpin_after;
    for (auto it = pins_.begin(); it != pins_.end();) {
      if (it->second.in_use == 0 && it->second.pinned_at < cutoff) {
        to_unpin.emplace_back(it->first, it->second.db_pin_count);
        it = pins_.erase(it);
      } else {
        ++it;
      }
    }
    stats_.unpinned += to_unpin.size();
  }
  // UNPIN outside our lock; the database serializes internally.
  size_t count = 0;
  for (const auto& [ts, db_pins] : to_unpin) {
    for (int i = 0; i < db_pins; ++i) {
      db_->Unpin(ts);
    }
    ++count;
  }
  return count;
}

size_t Pincushion::pinned_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pins_.size();
}

std::vector<Pincushion::PinEntry> Pincushion::ExportState() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PinEntry> out;
  out.reserve(pins_.size());
  for (const auto& [ts, entry] : pins_) {
    out.push_back(PinEntry{ts, entry.pinned_at, entry.in_use, entry.db_pin_count});
  }
  return out;
}

void Pincushion::ImportState(const std::vector<PinEntry>& entries) {
  std::lock_guard<std::mutex> lock(mu_);
  pins_.clear();
  for (const PinEntry& e : entries) {
    pins_[e.ts] = Entry{e.pinned_at, e.in_use, e.db_pin_count};
  }
}

PincushionStats Pincushion::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace txcache
