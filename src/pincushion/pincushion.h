// The pincushion (paper §5.4): a lightweight daemon that tracks which snapshots are pinned on
// the database, hands out sufficiently fresh pins to read-only transactions, and unpins old
// snapshots once no running transaction can still use them.
//
// The TxCache library asks for all pins within its staleness limit at BEGIN-RO; the pincushion
// marks them in use for the duration of the transaction. If none are fresh enough, the library
// pins a new snapshot on the database and registers it here.
#ifndef SRC_PINCUSHION_PINCUSHION_H_
#define SRC_PINCUSHION_PINCUSHION_H_

#include <map>
#include <mutex>
#include <vector>

#include "src/db/database.h"
#include "src/util/clock.h"
#include "src/util/types.h"

namespace txcache {

struct PinInfo {
  Timestamp ts = kTimestampZero;
  WallClock pinned_at = 0;  // database-reported wall-clock time of the pin
};

struct PincushionStats {
  uint64_t fresh_requests = 0;
  uint64_t pins_handed_out = 0;
  uint64_t registrations = 0;
  uint64_t sweeps = 0;
  uint64_t unpinned = 0;
};

class Pincushion {
 public:
  struct Options {
    // A pin older than this with no users is unpinned by Sweep. Should exceed the largest
    // staleness limit in use so fresh transactions can still find old-enough pins.
    WallClock unpin_after = Seconds(120);
  };

  Pincushion(Database* db, const Clock* clock) : Pincushion(db, clock, Options{}) {}
  Pincushion(Database* db, const Clock* clock, Options options)
      : db_(db), clock_(clock), options_(options) {}

  // Returns every pinned snapshot not older than `staleness`, newest last, and marks each as
  // in use. The caller must pass the same list to Release when its transaction ends.
  std::vector<PinInfo> AcquireFreshPins(WallClock staleness);

  // Records a snapshot the library just pinned on the database, already marked in use once.
  // (Two libraries may race to pin the same timestamp; the database refcounts, and so do we.)
  void Register(const PinInfo& pin);

  // Drops one use of each listed pin.
  void Release(const std::vector<PinInfo>& pins);

  // Unpins unused snapshots older than the threshold. Returns the number unpinned.
  size_t Sweep();

  size_t pinned_count() const;
  PincushionStats stats() const;

  // State transfer for replication (ReplicatedPincushion): a full snapshot of the pin table.
  struct PinEntry {
    Timestamp ts = kTimestampZero;
    WallClock pinned_at = 0;
    int in_use = 0;
    int db_pin_count = 0;
  };
  std::vector<PinEntry> ExportState() const;
  void ImportState(const std::vector<PinEntry>& entries);

 private:
  struct Entry {
    WallClock pinned_at = 0;
    int in_use = 0;        // running transactions that may read this snapshot
    int db_pin_count = 0;  // times the database was asked to PIN this snapshot
  };

  Database* db_;
  const Clock* clock_;
  Options options_;

  mutable std::mutex mu_;
  std::map<Timestamp, Entry> pins_;
  PincushionStats stats_;
};

}  // namespace txcache

#endif  // SRC_PINCUSHION_PINCUSHION_H_
