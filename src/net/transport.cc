#include "src/net/transport.h"

#include <atomic>
#include <cstdlib>
#include <utility>

#include "src/net/net_client.h"
#include "src/net/net_server.h"
#include "src/net/wire.h"

namespace txcache {

namespace {

class LoopbackTransport final : public CacheTransport {
 public:
  explicit LoopbackTransport(CacheServer* server) : server_(server) {}

  const std::string& name() const override { return server_->name(); }

  LookupResponse Lookup(const LookupRequest& req) override { return server_->Lookup(req); }
  MultiLookupResponse MultiLookup(const MultiLookupRequest& req) override {
    return server_->MultiLookup(req);
  }
  void MultiLookup(const MultiLookupRequest& req, const std::vector<uint32_t>& indices,
                   MultiLookupResponse* out) override {
    server_->MultiLookup(req, indices, out);
  }
  Status Insert(const InsertRequest& req,
                std::shared_ptr<const AdvisoryHints>* hints_out) override {
    return server_->Insert(req, hints_out);
  }
  IntentResponse AcquireIntent(const IntentRequest& req) override {
    return server_->AcquireIntent(req);
  }
  IntentResponse ReleaseIntent(const IntentRequest& req) override {
    return server_->ReleaseIntent(req);
  }
  CacheServer* local_server() const override { return server_; }

 private:
  CacheServer* const server_;
};

// Data plane over NetClient; management plane via the (optional) local server object.
class SocketTransport final : public CacheTransport {
 public:
  SocketTransport(std::string name, CacheServer* server, net::NetClientOptions client_options,
                  std::unique_ptr<net::NetServer> owned_server)
      : name_(std::move(name)),
        server_(server),
        owned_net_server_(std::move(owned_server)),
        client_(std::move(client_options)) {}

  ~SocketTransport() override {
    // Drop client connections before tearing down a self-hosted server.
    client_.CloseIdle();
    owned_net_server_.reset();
  }

  const std::string& name() const override { return name_; }

  LookupResponse Lookup(const LookupRequest& req) override {
    net::FrameType type;
    std::string payload;
    LookupResponse resp;
    if (!client_.Call(net::FrameType::kLookupReq, net::EncodeLookupRequest(req), &type,
                      &payload) ||
        type != net::FrameType::kLookupResp || !net::DecodeLookupResponse(payload, &resp)) {
      return Unreachable();
    }
    return resp;
  }

  MultiLookupResponse MultiLookup(const MultiLookupRequest& req) override {
    net::FrameType type;
    std::string payload;
    MultiLookupResponse resp;
    if (!client_.Call(net::FrameType::kMultiLookupReq, net::EncodeMultiLookupRequest(req),
                      &type, &payload) ||
        type != net::FrameType::kMultiLookupResp ||
        !net::DecodeMultiLookupResponse(payload, &resp) ||
        resp.responses.size() != req.lookups.size()) {
      failures_.fetch_add(1, std::memory_order_relaxed);
      MultiLookupResponse degraded;
      degraded.responses.resize(req.lookups.size());
      for (LookupResponse& r : degraded.responses) {
        r.miss = MissKind::kNodeUnavailable;
      }
      return degraded;
    }
    return resp;
  }

  void MultiLookup(const MultiLookupRequest& req, const std::vector<uint32_t>& indices,
                   MultiLookupResponse* out) override {
    // One sub-batch frame per node — this single round-trip IS the pipelining win cluster
    // MultiLookup gets over per-key lookups.
    MultiLookupRequest sub;
    sub.lookups.reserve(indices.size());
    for (uint32_t i : indices) {
      sub.lookups.push_back(req.lookups[i]);
    }
    MultiLookupResponse resp = MultiLookup(sub);
    for (size_t j = 0; j < indices.size(); ++j) {
      out->responses[indices[j]] = std::move(resp.responses[j]);
    }
  }

  Status Insert(const InsertRequest& req,
                std::shared_ptr<const AdvisoryHints>* hints_out) override {
    net::FrameType type;
    std::string payload;
    Status status;
    std::shared_ptr<const AdvisoryHints> hints;
    if (!client_.Call(net::FrameType::kInsertReq, net::EncodeInsertRequest(req), &type,
                      &payload) ||
        type != net::FrameType::kInsertResp ||
        !net::DecodeInsertOutcome(payload, &status, &hints)) {
      failures_.fetch_add(1, std::memory_order_relaxed);
      return Status::Unavailable("cache node unreachable");
    }
    if (hints_out != nullptr) {
      *hints_out = std::move(hints);
    }
    return status;
  }

  IntentResponse AcquireIntent(const IntentRequest& req) override {
    return Intent(req, net::FrameType::kIntentAcquireReq);
  }
  IntentResponse ReleaseIntent(const IntentRequest& req) override {
    return Intent(req, net::FrameType::kIntentReleaseReq);
  }

  CacheServer* local_server() const override { return server_; }
  uint64_t transport_failures() const override {
    return failures_.load(std::memory_order_relaxed);
  }

  net::NetClient* client() { return &client_; }
  net::NetServer* net_server() { return owned_net_server_.get(); }

 private:
  LookupResponse Unreachable() {
    failures_.fetch_add(1, std::memory_order_relaxed);
    LookupResponse resp;
    resp.miss = MissKind::kNodeUnavailable;
    return resp;
  }

  IntentResponse Intent(const IntentRequest& req, net::FrameType frame) {
    net::FrameType type;
    std::string payload;
    IntentResponse resp;
    if (!client_.Call(frame, net::EncodeIntentRequest(req), &type, &payload) ||
        type != net::FrameType::kIntentResp || !net::DecodeIntentResponse(payload, &resp)) {
      failures_.fetch_add(1, std::memory_order_relaxed);
      IntentResponse degraded;
      degraded.status = Status::Unavailable("cache node unreachable");
      return degraded;
    }
    return resp;
  }

  const std::string name_;
  CacheServer* const server_;  // may be null (fully remote node)
  std::unique_ptr<net::NetServer> owned_net_server_;  // self-hosted form only
  net::NetClient client_;
  std::atomic<uint64_t> failures_{0};
};

TransportFactory g_default_factory;  // empty = environment-driven

bool EnvWantsSocket() {
  const char* v = std::getenv("TXCACHE_TRANSPORT");
  return v != nullptr && std::string(v) == "socket";
}

}  // namespace

std::shared_ptr<CacheTransport> MakeLoopbackTransport(CacheServer* server) {
  return std::make_shared<LoopbackTransport>(server);
}

std::shared_ptr<CacheTransport> MakeSelfHostedSocketTransport(CacheServer* server,
                                                              int request_timeout_ms) {
  auto net_server = std::make_unique<net::NetServer>(server);
  if (!net_server->Start().ok()) {
    return nullptr;
  }
  net::NetClientOptions client_options;
  client_options.host = "127.0.0.1";
  client_options.port = net_server->port();
  client_options.request_timeout_ms = request_timeout_ms;
  return std::make_shared<SocketTransport>(server->name(), server, std::move(client_options),
                                           std::move(net_server));
}

std::shared_ptr<CacheTransport> MakeSocketTransport(std::string name, CacheServer* server,
                                                    const std::string& host, uint16_t port,
                                                    int connect_timeout_ms,
                                                    int request_timeout_ms) {
  net::NetClientOptions client_options;
  client_options.host = host;
  client_options.port = port;
  client_options.connect_timeout_ms = connect_timeout_ms;
  client_options.request_timeout_ms = request_timeout_ms;
  return std::make_shared<SocketTransport>(std::move(name), server, std::move(client_options),
                                           nullptr);
}

std::shared_ptr<CacheTransport> MakeDefaultTransport(CacheServer* server) {
  if (g_default_factory) {
    return g_default_factory(server);
  }
  if (EnvWantsSocket()) {
    auto transport = MakeSelfHostedSocketTransport(server);
    if (transport != nullptr) {
      return transport;
    }
    // Could not bind (port exhaustion?): loopback beats a dead node.
  }
  return MakeLoopbackTransport(server);
}

void SetDefaultTransportFactory(TransportFactory factory) {
  g_default_factory = std::move(factory);
}

bool DefaultTransportIsSocket() { return EnvWantsSocket(); }

}  // namespace txcache
