// Binary wire protocol for the cache's cluster RPCs (docs/architecture.md §"Network
// transport").
//
// Every RPC the in-process cluster path issues — LOOKUP, MULTILOOKUP, PUT, write-intent
// acquire/release, invalidation delivery and snapshot/replication push — has a frame type
// here, encoded with the same deterministic length-prefixed serde the cache keys and values
// already use (src/util/serde.h). A frame is a fixed 20-byte header followed by the payload:
//
//   u32 magic 'TXCP' | u8 version | u8 type | u16 flags | u32 payload_len | u64 request_id
//
// all little-endian. request_id is chosen by the client and echoed verbatim by the server;
// responses on one connection are answered strictly in request order (pipelining contract:
// a client may write any number of request frames back-to-back and then read the same number
// of responses — a MultiLookup batch or 16 back-to-back lookups ride one round-trip).
//
// Parsing is incremental and hostile-input-safe: TryParseFrame consumes a byte stream that
// may hold a partial frame (kNeedMore), a complete frame (kFrame), or garbage — wrong magic,
// unknown version, a length exceeding kMaxFramePayload (kError: the stream cannot be trusted
// past this point and the connection must be closed). Payload decoders reject truncated,
// trailing-bytes and out-of-range-enum payloads.
#ifndef SRC_NET_WIRE_H_
#define SRC_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/bus/invalidation.h"
#include "src/cache/cache_types.h"
#include "src/util/serde.h"
#include "src/util/status.h"

namespace txcache::net {

inline constexpr uint32_t kFrameMagic = 0x50435854u;  // "TXCP" in little-endian byte order
inline constexpr uint8_t kWireVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 20;
// Values are multi-MB at the top of the admission range and snapshot pushes carry a whole
// node; anything beyond this is a protocol violation, not a big request.
inline constexpr uint32_t kMaxFramePayload = 256u << 20;

enum class FrameType : uint8_t {
  kLookupReq = 1,
  kLookupResp = 2,
  kMultiLookupReq = 3,
  kMultiLookupResp = 4,
  kInsertReq = 5,
  kInsertResp = 6,
  kIntentAcquireReq = 7,
  kIntentReleaseReq = 8,
  kIntentResp = 9,
  // Invalidation-stream delivery to a remote node (multi-process deployments feed the stream
  // over the wire; in-process tests keep using the bus directly). Acked so a pusher can pace.
  kInvalidationPush = 10,
  kInvalidationAck = 11,
  // Whole-snapshot push (warm hand-off / replication bootstrap): payload is the opaque
  // ExportSnapshot blob, answered with the ImportSnapshot status.
  kSnapshotPush = 12,
  kSnapshotAck = 13,
  kPing = 14,
  kPong = 15,
  // Server-side decode failure or unsupported type: payload is a Status. The connection
  // stays usable (the broken request was fully framed).
  kError = 16,
};

const char* FrameTypeName(FrameType type);
bool IsKnownFrameType(uint8_t type);

struct FrameHeader {
  uint8_t version = kWireVersion;
  FrameType type = FrameType::kPing;
  uint16_t flags = 0;
  uint32_t payload_len = 0;
  uint64_t request_id = 0;
};

// One complete frame: header + payload, ready to write to a socket.
std::string EncodeFrame(FrameType type, uint64_t request_id, std::string_view payload);

enum class FrameParse : uint8_t {
  kNeedMore,  // the buffer holds a prefix of a valid frame; read more bytes
  kFrame,     // *header/*payload filled; *consumed bytes belong to this frame
  kError,     // the stream is not speaking this protocol; close the connection
};

// Examines the front of `buf`. On kFrame, `*payload` views into `buf` (valid until the caller
// mutates it) and `*consumed` is header + payload length. On kError, `*error` says why.
FrameParse TryParseFrame(std::string_view buf, FrameHeader* header, std::string_view* payload,
                         size_t* consumed, std::string* error);

// --- payload codecs ---
// Requests ride the generic serde path (the structs expose ForEachField); responses carry
// shared_ptr payloads and enums, so they are encoded field-by-field here. Every decoder
// requires the payload to parse exactly (no truncation, no trailing bytes) and every enum to
// be in range; on failure the out-param is unspecified and false is returned.

std::string EncodeLookupRequest(const LookupRequest& req);
bool DecodeLookupRequest(std::string_view payload, LookupRequest* out);

std::string EncodeMultiLookupRequest(const MultiLookupRequest& req);
bool DecodeMultiLookupRequest(std::string_view payload, MultiLookupRequest* out);

std::string EncodeInsertRequest(const InsertRequest& req);
bool DecodeInsertRequest(std::string_view payload, InsertRequest* out);

std::string EncodeIntentRequest(const IntentRequest& req);
bool DecodeIntentRequest(std::string_view payload, IntentRequest* out);

std::string EncodeInvalidationMessage(const InvalidationMessage& msg);
bool DecodeInvalidationMessage(std::string_view payload, InvalidationMessage* out);

std::string EncodeLookupResponse(const LookupResponse& resp);
bool DecodeLookupResponse(std::string_view payload, LookupResponse* out);

std::string EncodeMultiLookupResponse(const MultiLookupResponse& resp);
bool DecodeMultiLookupResponse(std::string_view payload, MultiLookupResponse* out);

// InsertResponse on the wire is the server-side outcome only: status + advisory hints.
// ring_epoch/served_by are routing-layer stamps added by the cluster on the client side,
// identically for the loopback and socket transports.
std::string EncodeInsertOutcome(const Status& status,
                                const std::shared_ptr<const AdvisoryHints>& hints);
bool DecodeInsertOutcome(std::string_view payload, Status* status,
                         std::shared_ptr<const AdvisoryHints>* hints);

std::string EncodeIntentResponse(const IntentResponse& resp);
bool DecodeIntentResponse(std::string_view payload, IntentResponse* out);

std::string EncodeStatus(const Status& status);
bool DecodeStatus(std::string_view payload, Status* out);

// Shared by the codecs above (exposed for tests).
void WriteStatus(Writer& w, const Status& s);
bool ReadStatus(Reader& r, Status* out);
void WriteLookupResponse(Writer& w, const LookupResponse& resp);
bool ReadLookupResponse(Reader& r, LookupResponse* out);

}  // namespace txcache::net

#endif  // SRC_NET_WIRE_H_
