// Pooled socket client for the cache wire protocol (docs/architecture.md §"Network
// transport").
//
// A NetClient talks to exactly one server endpoint. Connections are pooled and keep-alive:
// Call/CallPipelined check a connection out of the free list (dialing a new one when the list
// is empty), run the exchange, and return it on success. Any failure — connect refused,
// deadline exceeded, mid-request disconnect, protocol garbage — discards the connection and
// fails the call; the caller (SocketTransport) degrades the RPC to a kNodeUnavailable miss,
// never an error and never a stale read, matching the paper's "a vanished node is just
// misses" failure model.
//
// Pipelining: CallPipelined writes every request frame back-to-back before reading any
// response, then reads exactly one response per request, in order (the server's contract).
// A batch of K small requests therefore costs one round-trip instead of K.
//
// Timeouts: connect_timeout_ms bounds the non-blocking dial; request_timeout_ms bounds each
// whole exchange (write + read, one deadline per Call/CallPipelined invocation).
#ifndef SRC_NET_NET_CLIENT_H_
#define SRC_NET_NET_CLIENT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/net/wire.h"

namespace txcache::net {

struct NetClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  int connect_timeout_ms = 1000;
  int request_timeout_ms = 2000;
  // Idle connections retained for reuse; extra connections are closed on release. Callers
  // that want N truly concurrent exchanges just issue them from N threads — each checks out
  // its own connection.
  size_t max_idle_connections = 32;
};

class NetClient {
 public:
  explicit NetClient(NetClientOptions options);
  ~NetClient();

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  // One request/response exchange. Returns false on any transport failure; *resp_type and
  // *resp_payload are valid only on success (the server may answer kError for a payload it
  // could not decode — that is a successful exchange carrying an error frame).
  bool Call(FrameType type, std::string_view payload, FrameType* resp_type,
            std::string* resp_payload);

  // Pipelined exchange: all requests written back-to-back, then one response read per
  // request, in request order. All-or-nothing: false means the connection failed somewhere
  // and no response should be trusted.
  bool CallPipelined(const std::vector<std::pair<FrameType, std::string>>& requests,
                     std::vector<FrameType>* resp_types,
                     std::vector<std::string>* resp_payloads);

  // Closes every pooled idle connection (in-flight calls keep theirs).
  void CloseIdle();

  uint64_t failures() const { return failures_.load(std::memory_order_relaxed); }
  uint64_t connects() const { return connects_.load(std::memory_order_relaxed); }
  const NetClientOptions& options() const { return options_; }

 private:
  struct Conn {
    int fd = -1;
    std::string in;  // read-ahead bytes (a well-behaved server never leaves any)
  };

  std::optional<Conn> Acquire();  // pooled or freshly dialed
  void Release(Conn conn);        // back to the pool (or closed if the pool is full)
  std::optional<Conn> Dial();
  // The exchange body; on failure the conn's fd is closed and failures_ bumped.
  bool Exchange(Conn& conn, const std::vector<std::pair<FrameType, std::string>>& requests,
                std::vector<FrameType>* resp_types, std::vector<std::string>* resp_payloads);

  const NetClientOptions options_;
  std::mutex mu_;
  std::vector<Conn> idle_;
  std::atomic<uint64_t> next_request_id_{1};
  std::atomic<uint64_t> failures_{0};
  std::atomic<uint64_t> connects_{0};
};

}  // namespace txcache::net

#endif  // SRC_NET_NET_CLIENT_H_
