#include "src/net/net_server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

namespace txcache::net {

namespace {

void DrainEventFd(int fd) {
  uint64_t n;
  while (read(fd, &n, sizeof(n)) > 0) {
  }
}

void SignalEventFd(int fd) {
  uint64_t one = 1;
  ssize_t ignored = write(fd, &one, sizeof(one));
  (void)ignored;
}

}  // namespace

NetServer::NetServer(CacheServer* server, NetServerOptions options)
    : server_(server), options_(std::move(options)) {}

NetServer::~NetServer() { Stop(); }

Status NetServer::Start() {
  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status::Internal("socket(): " + std::string(strerror(errno)));
  }
  int on = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &on, sizeof(on));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address: " + options_.bind_address);
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = Status::Unavailable("bind(): " + std::string(strerror(errno)));
    close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (listen(listen_fd_, options_.backlog) != 0) {
    Status s = Status::Unavailable("listen(): " + std::string(strerror(errno)));
    close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  socklen_t len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }

  accept_wake_fd_ = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (accept_wake_fd_ < 0) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("eventfd(): " + std::string(strerror(errno)));
  }

  const size_t n_workers = options_.num_workers > 0 ? options_.num_workers : 1;
  workers_.reserve(n_workers);
  for (size_t i = 0; i < n_workers; ++i) {
    auto w = std::make_unique<Worker>();
    w->epoll_fd = epoll_create1(EPOLL_CLOEXEC);
    w->wake_fd = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (w->epoll_fd < 0 || w->wake_fd < 0) {
      Stop();
      return Status::Internal("epoll/eventfd setup failed");
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = w->wake_fd;
    epoll_ctl(w->epoll_fd, EPOLL_CTL_ADD, w->wake_fd, &ev);
    workers_.push_back(std::move(w));
  }

  running_.store(true, std::memory_order_release);
  for (auto& w : workers_) {
    w->thread = std::thread([this, wp = w.get()] { WorkerLoop(wp); });
  }
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void NetServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    // Never started (or already stopped): still release any half-built fds from Start().
    if (listen_fd_ >= 0) {
      close(listen_fd_);
      listen_fd_ = -1;
    }
    if (accept_wake_fd_ >= 0) {
      close(accept_wake_fd_);
      accept_wake_fd_ = -1;
    }
    for (auto& w : workers_) {
      if (w->epoll_fd >= 0) close(w->epoll_fd);
      if (w->wake_fd >= 0) close(w->wake_fd);
    }
    workers_.clear();
    return;
  }
  SignalEventFd(accept_wake_fd_);
  for (auto& w : workers_) {
    SignalEventFd(w->wake_fd);
  }
  if (acceptor_.joinable()) {
    acceptor_.join();
  }
  for (auto& w : workers_) {
    if (w->thread.joinable()) {
      w->thread.join();
    }
    for (auto& [fd, conn] : w->conns) {
      close(fd);
    }
    for (int fd : w->pending) {
      close(fd);
    }
    w->conns.clear();
    w->pending.clear();
    close(w->epoll_fd);
    close(w->wake_fd);
  }
  workers_.clear();
  close(listen_fd_);
  listen_fd_ = -1;
  close(accept_wake_fd_);
  accept_wake_fd_ = -1;
}

void NetServer::AcceptLoop() {
  // The acceptor multiplexes just two fds (listen + wake); epoll would be overkill, but the
  // listen socket is non-blocking so accept() never stalls shutdown.
  while (running_.load(std::memory_order_acquire)) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {accept_wake_fd_, POLLIN, 0}};
    int rc = poll(fds, 2, 500);
    if (rc < 0 && errno != EINTR) {
      break;
    }
    if (fds[1].revents != 0) {
      DrainEventFd(accept_wake_fd_);
    }
    if ((fds[0].revents & POLLIN) == 0) {
      continue;
    }
    // Non-blocking accept burst: take everything the backlog holds, then go back to poll.
    while (true) {
      int fd = accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        break;  // EAGAIN (drained) or transient error; poll again
      }
      int on = 1;
      setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &on, sizeof(on));
      connections_accepted_.fetch_add(1, std::memory_order_relaxed);
      Worker* w = workers_[next_worker_.fetch_add(1, std::memory_order_relaxed) %
                           workers_.size()]
                      .get();
      {
        std::lock_guard<std::mutex> lock(w->mu);
        w->pending.push_back(fd);
      }
      SignalEventFd(w->wake_fd);
    }
  }
}

void NetServer::AdoptPending(Worker* w) {
  std::vector<int> fds;
  {
    std::lock_guard<std::mutex> lock(w->mu);
    fds.swap(w->pending);
  }
  for (int fd : fds) {
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLRDHUP;
    ev.data.fd = fd;
    if (epoll_ctl(w->epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
      close(fd);
      continue;
    }
    w->conns.emplace(fd, std::move(conn));
  }
}

void NetServer::WorkerLoop(Worker* w) {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (running_.load(std::memory_order_acquire)) {
    int n = epoll_wait(w->epoll_fd, events, kMaxEvents, 500);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == w->wake_fd) {
        DrainEventFd(w->wake_fd);
        AdoptPending(w);
        continue;
      }
      auto it = w->conns.find(fd);
      if (it == w->conns.end()) {
        continue;  // closed earlier in this batch
      }
      Connection* c = it->second.get();
      const uint32_t ev = events[i].events;
      bool alive = true;
      if ((ev & (EPOLLERR | EPOLLHUP)) != 0) {
        alive = false;
      }
      if (alive && (ev & (EPOLLIN | EPOLLRDHUP)) != 0) {
        alive = HandleReadable(c);
      }
      if (alive && (ev & EPOLLOUT) != 0) {
        alive = FlushWrites(w, c);
      }
      if (alive && c->out_off < c->out.size() && !c->want_write) {
        // HandleReadable queued responses it could not fully write inline.
        alive = FlushWrites(w, c);
      }
      if (!alive) {
        CloseConnection(w, fd);
      }
    }
  }
}

bool NetServer::HandleReadable(Connection* c) {
  // Drain the socket (level-triggered epoll would re-arm anyway, but draining now lets a
  // whole pipelined request window be dispatched in one pass).
  char buf[64 * 1024];
  bool peer_closed = false;
  while (true) {
    ssize_t n = recv(c->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      c->in.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      peer_closed = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      break;
    }
    if (errno == EINTR) {
      continue;
    }
    return false;  // hard socket error
  }

  // Dispatch every complete frame, in order; responses accumulate in `out` in that same
  // order (the pipelining contract).
  size_t offset = 0;
  while (true) {
    FrameHeader header;
    std::string_view payload;
    size_t consumed = 0;
    std::string error;
    FrameParse parse = TryParseFrame(std::string_view(c->in).substr(offset), &header, &payload,
                                     &consumed, &error);
    if (parse == FrameParse::kNeedMore) {
      break;
    }
    if (parse == FrameParse::kError) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      return false;  // stream unsynchronized; nothing sane can follow
    }
    c->out += DispatchFrame(header, payload);
    frames_served_.fetch_add(1, std::memory_order_relaxed);
    offset += consumed;
  }
  if (offset > 0) {
    c->in.erase(0, offset);
  }

  if (peer_closed) {
    // Allow the queued responses to flush before closing only if the peer half-closed with
    // requests in flight; the simple (and sufficient) policy is: flush what we can now, then
    // close. A client that half-closes mid-request forfeits the tail.
    while (c->out_off < c->out.size()) {
      ssize_t n = send(c->fd, c->out.data() + c->out_off, c->out.size() - c->out_off,
                       MSG_NOSIGNAL);
      if (n <= 0) {
        break;
      }
      c->out_off += static_cast<size_t>(n);
    }
    return false;
  }
  return true;
}

bool NetServer::FlushWrites(Worker* w, Connection* c) {
  while (c->out_off < c->out.size()) {
    ssize_t n = send(c->fd, c->out.data() + c->out_off, c->out.size() - c->out_off,
                     MSG_NOSIGNAL);
    if (n > 0) {
      c->out_off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Short write: keep the rest for EPOLLOUT.
      if (!c->want_write) {
        epoll_event ev{};
        ev.events = EPOLLIN | EPOLLRDHUP | EPOLLOUT;
        ev.data.fd = c->fd;
        epoll_ctl(w->epoll_fd, EPOLL_CTL_MOD, c->fd, &ev);
        c->want_write = true;
      }
      return true;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    return false;
  }
  c->out.clear();
  c->out_off = 0;
  if (c->want_write) {
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLRDHUP;
    ev.data.fd = c->fd;
    epoll_ctl(w->epoll_fd, EPOLL_CTL_MOD, c->fd, &ev);
    c->want_write = false;
  }
  return true;
}

void NetServer::CloseConnection(Worker* w, int fd) {
  epoll_ctl(w->epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
  close(fd);
  w->conns.erase(fd);
}

std::string NetServer::DispatchFrame(const FrameHeader& header, std::string_view payload) {
  auto malformed = [&](const char* what) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    return EncodeFrame(FrameType::kError, header.request_id,
                       EncodeStatus(Status::InvalidArgument(what)));
  };
  switch (header.type) {
    case FrameType::kLookupReq: {
      LookupRequest req;
      if (!DecodeLookupRequest(payload, &req)) {
        return malformed("malformed LOOKUP_REQ payload");
      }
      return EncodeFrame(FrameType::kLookupResp, header.request_id,
                         EncodeLookupResponse(server_->Lookup(req)));
    }
    case FrameType::kMultiLookupReq: {
      MultiLookupRequest req;
      if (!DecodeMultiLookupRequest(payload, &req)) {
        return malformed("malformed MULTILOOKUP_REQ payload");
      }
      return EncodeFrame(FrameType::kMultiLookupResp, header.request_id,
                         EncodeMultiLookupResponse(server_->MultiLookup(req)));
    }
    case FrameType::kInsertReq: {
      InsertRequest req;
      if (!DecodeInsertRequest(payload, &req)) {
        return malformed("malformed INSERT_REQ payload");
      }
      std::shared_ptr<const AdvisoryHints> hints;
      Status status = server_->Insert(req, &hints);
      return EncodeFrame(FrameType::kInsertResp, header.request_id,
                         EncodeInsertOutcome(status, hints));
    }
    case FrameType::kIntentAcquireReq:
    case FrameType::kIntentReleaseReq: {
      IntentRequest req;
      if (!DecodeIntentRequest(payload, &req)) {
        return malformed("malformed INTENT_REQ payload");
      }
      IntentResponse resp = header.type == FrameType::kIntentAcquireReq
                                ? server_->AcquireIntent(req)
                                : server_->ReleaseIntent(req);
      return EncodeFrame(FrameType::kIntentResp, header.request_id,
                         EncodeIntentResponse(resp));
    }
    case FrameType::kInvalidationPush: {
      InvalidationMessage msg;
      if (!DecodeInvalidationMessage(payload, &msg)) {
        return malformed("malformed INVALIDATION_PUSH payload");
      }
      server_->Deliver(msg);
      return EncodeFrame(FrameType::kInvalidationAck, header.request_id, {});
    }
    case FrameType::kSnapshotPush: {
      // Payload is the opaque ExportSnapshot blob (it carries its own integrity checks).
      Status status = server_->ImportSnapshot(std::string(payload));
      return EncodeFrame(FrameType::kSnapshotAck, header.request_id, EncodeStatus(status));
    }
    case FrameType::kPing:
      return EncodeFrame(FrameType::kPong, header.request_id, {});
    default:
      // Response-typed or unknown-but-in-range frames are not valid requests.
      return malformed("frame type is not a request");
  }
}

}  // namespace txcache::net
