// Transport abstraction between cluster routing and cache nodes (docs/architecture.md
// §"Network transport").
//
// CacheCluster routes every data-plane RPC — Lookup, MultiLookup, Insert, intent
// acquire/release — through a CacheTransport instead of calling the CacheServer directly.
// Two implementations:
//
//   * LoopbackTransport — the original in-process method-call path. Zero overhead, zero
//     behavior change; the entire existing test/property/TSan suite runs on it.
//   * SocketTransport — the RPCs ride the binary wire protocol over real TCP sockets
//     (NetClient → epoll NetServer). The self-hosted form spins a NetServer around the given
//     in-process CacheServer on an ephemeral loopback port, so one process can exercise the
//     full socket data plane while cluster MANAGEMENT (membership, stats, snapshots,
//     replication export) still reaches the server object via local_server().
//
// Parity contract: both transports answer every RPC with identical semantics. The only
// socket-specific behavior is failure: connect refused, request timeout and mid-request
// disconnect all degrade to kNodeUnavailable misses (lookups), Status kUnavailable (inserts,
// intents) — never an error, never a stale read — exactly how a crashed node already answers.
//
// Suite parameterization: CacheCluster::AddNode(CacheServer*) builds its transport through
// the process-global default factory. TXCACHE_TRANSPORT=socket flips that factory to
// self-hosted socket transports, running the whole existing suite over real sockets with no
// per-test changes; SetDefaultTransportFactory overrides it programmatically.
#ifndef SRC_NET_TRANSPORT_H_
#define SRC_NET_TRANSPORT_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/cache/cache_server.h"
#include "src/cache/cache_types.h"

namespace txcache {

class CacheTransport {
 public:
  virtual ~CacheTransport() = default;

  // Node name (ring identity). Stable for the transport's lifetime.
  virtual const std::string& name() const = 0;

  // --- data plane ---
  virtual LookupResponse Lookup(const LookupRequest& req) = 0;
  virtual MultiLookupResponse MultiLookup(const MultiLookupRequest& req) = 0;
  // Scatter form (cluster routing): answer only req.lookups[i] for i in `indices`, writing
  // each result to out->responses[i] (pre-sized by the caller).
  virtual void MultiLookup(const MultiLookupRequest& req, const std::vector<uint32_t>& indices,
                           MultiLookupResponse* out) = 0;
  virtual Status Insert(const InsertRequest& req,
                        std::shared_ptr<const AdvisoryHints>* hints_out) = 0;
  virtual IntentResponse AcquireIntent(const IntentRequest& req) = 0;
  virtual IntentResponse ReleaseIntent(const IntentRequest& req) = 0;

  // --- management plane ---
  // The in-process server behind this transport: membership lifecycle, stats aggregation,
  // snapshot/replication orchestration. Both bundled transports are backed by a server in
  // this process (a fully remote deployment drives NetClient directly; see examples/).
  virtual CacheServer* local_server() const = 0;

  // Transport-level failures this node absorbed into kNodeUnavailable/kUnavailable answers
  // (always 0 for loopback).
  virtual uint64_t transport_failures() const { return 0; }
};

// The in-process path: direct method calls on the server.
std::shared_ptr<CacheTransport> MakeLoopbackTransport(CacheServer* server);

// Self-hosted socket path: serves `server` on an ephemeral 127.0.0.1 port via NetServer and
// routes the data plane through a pooled NetClient. Returns nullptr only if the server
// socket could not be bound. request_timeout_ms bounds every RPC (then: degrade to
// unavailable).
std::shared_ptr<CacheTransport> MakeSelfHostedSocketTransport(CacheServer* server,
                                                              int request_timeout_ms = 2000);

// Client-only socket transport to an already-listening endpoint (no local NetServer;
// local_server() is `server`, which may be nullptr for fully remote nodes — cluster
// management then skips the node). Used by tests to aim a transport at dead/black-hole
// endpoints and by multi-process deployments.
std::shared_ptr<CacheTransport> MakeSocketTransport(std::string name, CacheServer* server,
                                                    const std::string& host, uint16_t port,
                                                    int connect_timeout_ms = 1000,
                                                    int request_timeout_ms = 2000);

// --- default factory (suite parameterization) ---
using TransportFactory =
    std::function<std::shared_ptr<CacheTransport>(CacheServer* server)>;

// Builds a transport for AddNode(CacheServer*): the installed factory if any, else
// TXCACHE_TRANSPORT=socket → self-hosted socket, else loopback.
std::shared_ptr<CacheTransport> MakeDefaultTransport(CacheServer* server);

// Installs (or, with nullptr, restores the environment-driven) default factory. Not
// thread-safe against concurrent AddNode — install before building clusters.
void SetDefaultTransportFactory(TransportFactory factory);

// True when TXCACHE_TRANSPORT=socket routes AddNode over sockets; tests use it to scale down
// iteration counts (socket RPCs cost microseconds, not nanoseconds).
bool DefaultTransportIsSocket();

}  // namespace txcache

#endif  // SRC_NET_TRANSPORT_H_
