#include "src/net/wire.h"

#include <memory>
#include <utility>
#include <vector>

namespace txcache::net {

namespace {

// Decoders that must reject out-of-range enum bytes anchor on these maxima; extending either
// enum without bumping the bound here turns valid frames into decode errors, which the wire
// round-trip tests catch immediately.
constexpr uint8_t kMaxMissKind = static_cast<uint8_t>(MissKind::kNodeUnavailable);
constexpr uint8_t kMaxStatusCode = static_cast<uint8_t>(StatusCode::kInternal);

// Payloads decode against exactly their bytes: every successful parse must land on AtEnd().
template <typename Fn>
bool DecodeExact(std::string_view payload, Fn fn) {
  Reader r(payload);
  if (!fn(r)) {
    return false;
  }
  return !r.failed() && r.AtEnd();
}

void WriteHints(Writer& w, const std::shared_ptr<const AdvisoryHints>& hints) {
  w.PutBool(hints != nullptr);
  if (hints != nullptr) {
    w.PutU64(hints->learned_lifetime_us);
    w.PutDouble(hints->observed_bpb);
    w.PutDouble(hints->decline_rate);
  }
}

bool ReadHints(Reader& r, std::shared_ptr<const AdvisoryHints>* out) {
  bool present = false;
  if (!r.GetBool(&present)) {
    return false;
  }
  if (!present) {
    out->reset();
    return true;
  }
  auto hints = std::make_shared<AdvisoryHints>();
  if (!r.GetU64(&hints->learned_lifetime_us) || !r.GetDouble(&hints->observed_bpb) ||
      !r.GetDouble(&hints->decline_rate)) {
    return false;
  }
  *out = std::move(hints);
  return true;
}

}  // namespace

const char* FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kLookupReq: return "LOOKUP_REQ";
    case FrameType::kLookupResp: return "LOOKUP_RESP";
    case FrameType::kMultiLookupReq: return "MULTILOOKUP_REQ";
    case FrameType::kMultiLookupResp: return "MULTILOOKUP_RESP";
    case FrameType::kInsertReq: return "INSERT_REQ";
    case FrameType::kInsertResp: return "INSERT_RESP";
    case FrameType::kIntentAcquireReq: return "INTENT_ACQUIRE_REQ";
    case FrameType::kIntentReleaseReq: return "INTENT_RELEASE_REQ";
    case FrameType::kIntentResp: return "INTENT_RESP";
    case FrameType::kInvalidationPush: return "INVALIDATION_PUSH";
    case FrameType::kInvalidationAck: return "INVALIDATION_ACK";
    case FrameType::kSnapshotPush: return "SNAPSHOT_PUSH";
    case FrameType::kSnapshotAck: return "SNAPSHOT_ACK";
    case FrameType::kPing: return "PING";
    case FrameType::kPong: return "PONG";
    case FrameType::kError: return "ERROR";
  }
  return "UNKNOWN";
}

bool IsKnownFrameType(uint8_t type) {
  return type >= static_cast<uint8_t>(FrameType::kLookupReq) &&
         type <= static_cast<uint8_t>(FrameType::kError);
}

std::string EncodeFrame(FrameType type, uint64_t request_id, std::string_view payload) {
  Writer w;
  w.PutU32(kFrameMagic);
  w.PutU8(kWireVersion);
  w.PutU8(static_cast<uint8_t>(type));
  // flags: reserved, must be zero in version 1.
  w.PutU8(0);
  w.PutU8(0);
  w.PutU32(static_cast<uint32_t>(payload.size()));
  w.PutU64(request_id);
  w.PutBytes(payload.data(), payload.size());
  return w.Take();
}

FrameParse TryParseFrame(std::string_view buf, FrameHeader* header, std::string_view* payload,
                         size_t* consumed, std::string* error) {
  if (buf.size() < kFrameHeaderBytes) {
    // Magic is validated as soon as its 4 bytes exist, so a connection speaking the wrong
    // protocol is cut off without waiting for a full header's worth of garbage.
    if (buf.size() >= sizeof(uint32_t)) {
      Reader peek(buf);
      uint32_t magic = 0;
      peek.GetU32(&magic);
      if (magic != kFrameMagic) {
        if (error != nullptr) {
          *error = "bad frame magic";
        }
        return FrameParse::kError;
      }
    }
    return FrameParse::kNeedMore;
  }
  Reader r(buf.substr(0, kFrameHeaderBytes));
  uint32_t magic = 0;
  uint8_t version = 0;
  uint8_t type = 0;
  uint8_t flags_lo = 0;
  uint8_t flags_hi = 0;
  uint32_t payload_len = 0;
  uint64_t request_id = 0;
  if (!r.GetU32(&magic) || !r.GetU8(&version) || !r.GetU8(&type) || !r.GetU8(&flags_lo) ||
      !r.GetU8(&flags_hi) || !r.GetU32(&payload_len) || !r.GetU64(&request_id)) {
    if (error != nullptr) {
      *error = "short frame header";
    }
    return FrameParse::kError;  // unreachable given the size check, but keep the parse honest
  }
  if (magic != kFrameMagic) {
    if (error != nullptr) {
      *error = "bad frame magic";
    }
    return FrameParse::kError;
  }
  if (version != kWireVersion) {
    if (error != nullptr) {
      *error = "unsupported wire version";
    }
    return FrameParse::kError;
  }
  if (!IsKnownFrameType(type)) {
    if (error != nullptr) {
      *error = "unknown frame type";
    }
    return FrameParse::kError;
  }
  if (payload_len > kMaxFramePayload) {
    if (error != nullptr) {
      *error = "frame payload exceeds protocol limit";
    }
    return FrameParse::kError;
  }
  if (buf.size() < kFrameHeaderBytes + payload_len) {
    return FrameParse::kNeedMore;
  }
  if (header != nullptr) {
    header->version = version;
    header->type = static_cast<FrameType>(type);
    header->flags = static_cast<uint16_t>(flags_lo) | (static_cast<uint16_t>(flags_hi) << 8);
    header->payload_len = payload_len;
    header->request_id = request_id;
  }
  if (payload != nullptr) {
    *payload = buf.substr(kFrameHeaderBytes, payload_len);
  }
  if (consumed != nullptr) {
    *consumed = kFrameHeaderBytes + payload_len;
  }
  return FrameParse::kFrame;
}

// --- request codecs (generic serde via ForEachField) ---

std::string EncodeLookupRequest(const LookupRequest& req) { return SerializeToString(req); }
bool DecodeLookupRequest(std::string_view payload, LookupRequest* out) {
  return DecodeExact(payload, [out](Reader& r) { return DeserializeValue(r, out); });
}

std::string EncodeMultiLookupRequest(const MultiLookupRequest& req) {
  return SerializeToString(req);
}
bool DecodeMultiLookupRequest(std::string_view payload, MultiLookupRequest* out) {
  return DecodeExact(payload, [out](Reader& r) { return DeserializeValue(r, out); });
}

std::string EncodeInsertRequest(const InsertRequest& req) { return SerializeToString(req); }
bool DecodeInsertRequest(std::string_view payload, InsertRequest* out) {
  return DecodeExact(payload, [out](Reader& r) { return DeserializeValue(r, out); });
}

std::string EncodeIntentRequest(const IntentRequest& req) { return SerializeToString(req); }
bool DecodeIntentRequest(std::string_view payload, IntentRequest* out) {
  return DecodeExact(payload, [out](Reader& r) { return DeserializeValue(r, out); });
}

std::string EncodeInvalidationMessage(const InvalidationMessage& msg) {
  return SerializeToString(msg);
}
bool DecodeInvalidationMessage(std::string_view payload, InvalidationMessage* out) {
  return DecodeExact(payload, [out](Reader& r) { return DeserializeValue(r, out); });
}

// --- response codecs (hand-rolled: shared_ptr payloads and range-checked enums) ---

void WriteStatus(Writer& w, const Status& s) {
  w.PutU8(static_cast<uint8_t>(s.code()));
  w.PutString(s.message());
}

bool ReadStatus(Reader& r, Status* out) {
  uint8_t code = 0;
  std::string message;
  if (!r.GetU8(&code) || !r.GetString(&message)) {
    return false;
  }
  if (code > kMaxStatusCode) {
    return false;
  }
  *out = Status(static_cast<StatusCode>(code), std::move(message));
  return true;
}

void WriteLookupResponse(Writer& w, const LookupResponse& resp) {
  w.PutBool(resp.hit);
  w.PutU8(static_cast<uint8_t>(resp.miss));
  w.PutU64(resp.ring_epoch);
  w.PutString(resp.served_by);
  w.PutBool(resp.value != nullptr);
  if (resp.value != nullptr) {
    w.PutString(*resp.value);
  }
  w.PutU64(resp.fill_cost_us);
  SerializeValue(w, resp.interval);
  w.PutBool(resp.still_valid);
  w.PutBool(resp.tags != nullptr);
  if (resp.tags != nullptr) {
    SerializeValue(w, *resp.tags);
  }
  WriteHints(w, resp.hints);
  w.PutU64(resp.intent_owner);
}

bool ReadLookupResponse(Reader& r, LookupResponse* out) {
  *out = LookupResponse{};
  uint8_t miss = 0;
  if (!r.GetBool(&out->hit) || !r.GetU8(&miss)) {
    return false;
  }
  if (miss > kMaxMissKind) {
    return false;
  }
  out->miss = static_cast<MissKind>(miss);
  if (!r.GetU64(&out->ring_epoch) || !r.GetString(&out->served_by)) {
    return false;
  }
  bool has_value = false;
  if (!r.GetBool(&has_value)) {
    return false;
  }
  if (has_value) {
    auto value = std::make_shared<std::string>();
    if (!r.GetString(value.get())) {
      return false;
    }
    out->value = std::move(value);
  }
  if (!r.GetU64(&out->fill_cost_us) || !DeserializeValue(r, &out->interval) ||
      !r.GetBool(&out->still_valid)) {
    return false;
  }
  bool has_tags = false;
  if (!r.GetBool(&has_tags)) {
    return false;
  }
  if (has_tags) {
    auto tags = std::make_shared<std::vector<InvalidationTag>>();
    if (!DeserializeValue(r, tags.get())) {
      return false;
    }
    out->tags = std::move(tags);
  }
  return ReadHints(r, &out->hints) && r.GetU64(&out->intent_owner);
}

std::string EncodeLookupResponse(const LookupResponse& resp) {
  Writer w;
  WriteLookupResponse(w, resp);
  return w.Take();
}
bool DecodeLookupResponse(std::string_view payload, LookupResponse* out) {
  return DecodeExact(payload, [out](Reader& r) { return ReadLookupResponse(r, out); });
}

std::string EncodeMultiLookupResponse(const MultiLookupResponse& resp) {
  Writer w;
  w.PutU64(resp.ring_epoch);
  w.PutU32(static_cast<uint32_t>(resp.responses.size()));
  for (const LookupResponse& lr : resp.responses) {
    WriteLookupResponse(w, lr);
  }
  return w.Take();
}
bool DecodeMultiLookupResponse(std::string_view payload, MultiLookupResponse* out) {
  return DecodeExact(payload, [out](Reader& r) {
    *out = MultiLookupResponse{};
    uint32_t n = 0;
    if (!r.GetU64(&out->ring_epoch) || !r.GetU32(&n)) {
      return false;
    }
    // A batch entry is never smaller than its fixed-width fields; a count implying more bytes
    // than the payload holds is rejected before the reserve can balloon.
    if (n > r.remaining()) {
      return false;
    }
    out->responses.resize(n);
    for (LookupResponse& lr : out->responses) {
      if (!ReadLookupResponse(r, &lr)) {
        return false;
      }
    }
    return true;
  });
}

std::string EncodeInsertOutcome(const Status& status,
                                const std::shared_ptr<const AdvisoryHints>& hints) {
  Writer w;
  WriteStatus(w, status);
  WriteHints(w, hints);
  return w.Take();
}
bool DecodeInsertOutcome(std::string_view payload, Status* status,
                         std::shared_ptr<const AdvisoryHints>* hints) {
  return DecodeExact(payload, [status, hints](Reader& r) {
    return ReadStatus(r, status) && ReadHints(r, hints);
  });
}

std::string EncodeIntentResponse(const IntentResponse& resp) {
  Writer w;
  WriteStatus(w, resp.status);
  w.PutU64(resp.ring_epoch);
  w.PutString(resp.served_by);
  w.PutU64(resp.holder);
  return w.Take();
}
bool DecodeIntentResponse(std::string_view payload, IntentResponse* out) {
  return DecodeExact(payload, [out](Reader& r) {
    *out = IntentResponse{};
    return ReadStatus(r, &out->status) && r.GetU64(&out->ring_epoch) &&
           r.GetString(&out->served_by) && r.GetU64(&out->holder);
  });
}

std::string EncodeStatus(const Status& status) {
  Writer w;
  WriteStatus(w, status);
  return w.Take();
}
bool DecodeStatus(std::string_view payload, Status* out) {
  return DecodeExact(payload, [out](Reader& r) { return ReadStatus(r, out); });
}

}  // namespace txcache::net
