// Epoll-based socket frontend for one CacheServer (docs/architecture.md §"Network
// transport").
//
// Architecture: one acceptor thread owns the non-blocking listen socket and hands accepted
// connections round-robin to N worker threads; each worker runs its own epoll loop over its
// connections (no cross-worker sharing, so no connection-level locking). Connections are
// keep-alive: a connection serves any number of requests until the peer closes it or breaks
// the protocol.
//
// Per-connection state machines:
//   * partial reads — bytes accumulate in an input buffer until TryParseFrame yields a
//     complete frame; a request split across any number of TCP segments is reassembled.
//   * short writes — responses accumulate in an output buffer; when the socket's send buffer
//     fills, the remainder is flushed on EPOLLOUT and the connection keeps accepting reads.
//   * pipelining — ALL complete frames in the input buffer are dispatched before responses
//     are flushed, and responses are written back in strict request order, so a client that
//     writes K requests back-to-back pays one round-trip for the whole window.
//
// Protocol errors (bad magic, unknown version, oversized frame) close the connection; a
// well-framed request whose payload fails to decode is answered with a kError frame and the
// connection stays usable.
#ifndef SRC_NET_NET_SERVER_H_
#define SRC_NET_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/cache/cache_server.h"
#include "src/net/wire.h"
#include "src/util/status.h"

namespace txcache::net {

struct NetServerOptions {
  std::string bind_address = "127.0.0.1";
  uint16_t port = 0;  // 0 = kernel-assigned ephemeral port (read it back via port())
  size_t num_workers = 2;
  // Listen backlog; bursts beyond it queue in the kernel or get RST, clients retry/degrade.
  int backlog = 256;
};

class NetServer {
 public:
  // `server` must outlive this NetServer and must not be destroyed while Start()ed.
  explicit NetServer(CacheServer* server, NetServerOptions options = {});
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  // Binds, listens and spins the acceptor + worker threads. Idempotent-hostile: call once.
  Status Start();
  // Stops the threads and closes every connection. Safe to call twice; called by the dtor.
  void Stop();

  // The bound port (resolved after Start() when options.port was 0).
  uint16_t port() const { return port_; }
  const std::string& bind_address() const { return options_.bind_address; }
  CacheServer* server() const { return server_; }

  uint64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }
  uint64_t frames_served() const { return frames_served_.load(std::memory_order_relaxed); }
  uint64_t protocol_errors() const { return protocol_errors_.load(std::memory_order_relaxed); }

 private:
  struct Connection {
    int fd = -1;
    std::string in;       // unparsed request bytes (partial-read state)
    std::string out;      // unflushed response bytes (short-write state)
    size_t out_off = 0;   // bytes of `out` already written
    bool want_write = false;  // EPOLLOUT currently armed
  };

  struct Worker {
    int epoll_fd = -1;
    int wake_fd = -1;  // eventfd: new connections or shutdown
    std::thread thread;
    std::mutex mu;
    std::vector<int> pending;  // accepted fds awaiting adoption (guarded by mu)
    std::unordered_map<int, std::unique_ptr<Connection>> conns;
  };

  void AcceptLoop();
  void WorkerLoop(Worker* w);
  void AdoptPending(Worker* w);
  // Drains readable bytes, dispatches every complete frame, queues responses. Returns false
  // when the connection must close (EOF, socket error, protocol error).
  bool HandleReadable(Connection* c);
  // Flushes queued responses; arms/disarms EPOLLOUT as needed. False = close.
  bool FlushWrites(Worker* w, Connection* c);
  void CloseConnection(Worker* w, int fd);
  // Executes one request frame against the CacheServer, returning the response frame.
  std::string DispatchFrame(const FrameHeader& header, std::string_view payload);

  CacheServer* const server_;
  const NetServerOptions options_;

  int listen_fd_ = -1;
  int accept_wake_fd_ = -1;
  uint16_t port_ = 0;
  std::thread acceptor_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<bool> running_{false};
  std::atomic<size_t> next_worker_{0};

  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> frames_served_{0};
  std::atomic<uint64_t> protocol_errors_{0};
};

}  // namespace txcache::net

#endif  // SRC_NET_NET_SERVER_H_
