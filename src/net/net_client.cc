#include "src/net/net_client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>

namespace txcache::net {

namespace {

using SteadyClock = std::chrono::steady_clock;

int RemainingMs(SteadyClock::time_point deadline) {
  auto left = std::chrono::duration_cast<std::chrono::milliseconds>(deadline - SteadyClock::now())
                  .count();
  if (left <= 0) {
    return 0;
  }
  return static_cast<int>(left);
}

// Polls fd for `events` until the deadline. True iff the event arrived in time.
bool PollFor(int fd, short events, SteadyClock::time_point deadline) {
  while (true) {
    int timeout = RemainingMs(deadline);
    if (timeout == 0) {
      return false;
    }
    pollfd p{fd, events, 0};
    int rc = poll(&p, 1, timeout);
    if (rc > 0) {
      return (p.revents & (events | POLLERR | POLLHUP)) != 0;
    }
    if (rc == 0) {
      return false;  // timed out
    }
    if (errno != EINTR) {
      return false;
    }
  }
}

}  // namespace

NetClient::NetClient(NetClientOptions options) : options_(std::move(options)) {}

NetClient::~NetClient() { CloseIdle(); }

void NetClient::CloseIdle() {
  std::vector<Conn> doomed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    doomed.swap(idle_);
  }
  for (Conn& c : doomed) {
    close(c.fd);
  }
}

std::optional<NetClient::Conn> NetClient::Acquire() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!idle_.empty()) {
    Conn c = std::move(idle_.back());
    idle_.pop_back();
    return c;
  }
  return std::nullopt;
}

void NetClient::Release(Conn conn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (idle_.size() < options_.max_idle_connections) {
      idle_.push_back(std::move(conn));
      return;
    }
  }
  close(conn.fd);
}

std::optional<NetClient::Conn> NetClient::Dial() {
  int fd = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    failures_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    failures_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  const auto deadline =
      SteadyClock::now() + std::chrono::milliseconds(options_.connect_timeout_ms);
  int rc = connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0) {
    if (errno != EINPROGRESS) {
      close(fd);  // immediate refusal (no listener): degrade, don't error
      failures_.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    if (!PollFor(fd, POLLOUT, deadline)) {
      close(fd);  // connect timeout
      failures_.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      close(fd);  // deferred refusal
      failures_.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
  }
  int on = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &on, sizeof(on));
  connects_.fetch_add(1, std::memory_order_relaxed);
  Conn c;
  c.fd = fd;
  return c;
}

bool NetClient::Exchange(Conn& conn,
                         const std::vector<std::pair<FrameType, std::string>>& requests,
                         std::vector<FrameType>* resp_types,
                         std::vector<std::string>* resp_payloads) {
  const auto deadline =
      SteadyClock::now() + std::chrono::milliseconds(options_.request_timeout_ms);

  // Stamp request ids now so response ids can be verified in order.
  std::vector<uint64_t> ids;
  ids.reserve(requests.size());
  std::string wire;
  for (const auto& [type, payload] : requests) {
    const uint64_t id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
    ids.push_back(id);
    wire += EncodeFrame(type, id, payload);
  }

  // Write side: the socket is non-blocking, so short writes spin through poll(POLLOUT).
  size_t off = 0;
  while (off < wire.size()) {
    ssize_t n = send(conn.fd, wire.data() + off, wire.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!PollFor(conn.fd, POLLOUT, deadline)) {
        return false;  // request timeout while the send buffer stayed full
      }
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    return false;  // peer reset / mid-request disconnect
  }

  // Read side: responses arrive in request order; parse frames out of the rolling buffer.
  resp_types->clear();
  resp_payloads->clear();
  resp_types->reserve(requests.size());
  resp_payloads->reserve(requests.size());
  size_t answered = 0;
  char buf[64 * 1024];
  while (answered < requests.size()) {
    FrameHeader header;
    std::string_view payload;
    size_t consumed = 0;
    FrameParse parse = TryParseFrame(conn.in, &header, &payload, &consumed, nullptr);
    if (parse == FrameParse::kError) {
      return false;  // server is not speaking our protocol
    }
    if (parse == FrameParse::kFrame) {
      if (header.request_id != ids[answered]) {
        return false;  // response misordered or for someone else: the stream is poisoned
      }
      resp_types->push_back(header.type);
      resp_payloads->emplace_back(payload);
      conn.in.erase(0, consumed);
      ++answered;
      continue;
    }
    // kNeedMore: pull bytes within the deadline.
    if (!PollFor(conn.fd, POLLIN, deadline)) {
      return false;  // response timeout
    }
    ssize_t n = recv(conn.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn.in.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      return false;  // server closed mid-response
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
      continue;
    }
    return false;
  }
  return true;
}

bool NetClient::Call(FrameType type, std::string_view payload, FrameType* resp_type,
                     std::string* resp_payload) {
  std::vector<std::pair<FrameType, std::string>> requests;
  requests.emplace_back(type, std::string(payload));
  std::vector<FrameType> types;
  std::vector<std::string> payloads;
  if (!CallPipelined(requests, &types, &payloads)) {
    return false;
  }
  *resp_type = types[0];
  *resp_payload = std::move(payloads[0]);
  return true;
}

bool NetClient::CallPipelined(const std::vector<std::pair<FrameType, std::string>>& requests,
                              std::vector<FrameType>* resp_types,
                              std::vector<std::string>* resp_payloads) {
  if (requests.empty()) {
    resp_types->clear();
    resp_payloads->clear();
    return true;
  }
  // Prefer a pooled keep-alive connection; the server may have closed it while it sat idle,
  // so a pooled connection that fails gets ONE retry on a freshly dialed one before the call
  // degrades. Fresh dials never retry — their failure is the server genuinely unreachable.
  std::optional<Conn> conn = Acquire();
  bool pooled = conn.has_value();
  if (!pooled) {
    conn = Dial();
    if (!conn.has_value()) {
      return false;  // dial failed (refused / connect timeout)
    }
  }
  if (!Exchange(*conn, requests, resp_types, resp_payloads)) {
    close(conn->fd);  // failed connections never go back in the pool
    failures_.fetch_add(1, std::memory_order_relaxed);
    if (!pooled) {
      return false;
    }
    conn = Dial();
    if (!conn.has_value() || !Exchange(*conn, requests, resp_types, resp_payloads)) {
      if (conn.has_value()) {
        close(conn->fd);
        failures_.fetch_add(1, std::memory_order_relaxed);
      }
      return false;
    }
  }
  if (!conn->in.empty()) {
    // Trailing unread bytes mean the server sent more than we asked for; don't reuse.
    close(conn->fd);
    return true;
  }
  Release(std::move(*conn));
  return true;
}

}  // namespace txcache::net
