// ClusterSim: a closed-loop simulation of the paper's evaluation cluster (§8).
//
// Topology mirrors the testbed: one database server, a set of web/application servers, a set of
// dedicated cache nodes, and a population of emulated clients with exponentially distributed
// think times running the RUBiS bidding mix.
//
// Hybrid simulation: every interaction executes its *real* application logic (actual queries
// against the MVCC engine, actual cache lookups, actual pin-set narrowing), and the simulator
// then charges the measured work — tuples examined, index probes, cache operations, commits —
// to FIFO-queued resources using the CostModel. Throughput saturates at whichever resource
// bottlenecks, exactly as on real hardware; the paper's database server is the bottleneck in
// every configuration, which holds here too.
#ifndef SRC_SIM_CLUSTER_SIM_H_
#define SRC_SIM_CLUSTER_SIM_H_

#include <memory>
#include <string>
#include <vector>

#include "src/bus/bus.h"
#include "src/cache/cache_cluster.h"
#include "src/cache/file_snapshot_store.h"
#include "src/core/cacheable_function.h"
#include "src/core/txcache_client.h"
#include "src/pincushion/pincushion.h"
#include "src/rubis/data.h"
#include "src/rubis/session.h"
#include "src/sim/cost_model.h"
#include "src/sim/event_queue.h"

namespace txcache::sim {

// Membership fault injection: what happens to the churn victim when its event fires.
enum class ChurnKind : uint8_t {
  kNone,         // no churn (the default)
  kCrashRejoin,  // node crashes but stays in the ring: its key range degrades to misses
  kLeaveRejoin,  // node is removed from the ring while down (planned decommission / ring
                 // resize): its arc remaps to the survivors, ~1/n of keys
};

struct SimConfig {
  rubis::RubisScale scale = rubis::RubisScale::InMemory(0.05);
  bool disk_bound = false;  // buffer cache smaller than the dataset

  size_t num_web_servers = 7;
  size_t num_cache_nodes = 2;
  size_t cache_bytes_per_node = 16 << 20;
  size_t num_clients = 1200;

  // Paper uses a 7 s mean think time with thousands of clients; we scale both down together
  // (same offered load per client count) to keep simulated populations small. EXPERIMENTS.md
  // documents the scaling.
  WallClock think_time_mean = Seconds(0.7);
  WallClock staleness = Seconds(30);
  ClientMode mode = ClientMode::kConsistent;
  // Route the sessions' read/write interactions through optimistic transactions
  // (BeginRw/RunRwTransaction: cache reads with commit-time validation, advisory write
  // intents, abort-and-retry with backoff) instead of the legacy BEGIN-RW cache bypass.
  // Retry backoff is charged to the interaction's response time on the simulated clock.
  bool optimistic_writes = false;
  // Capacity management policy of the cache fleet (automatic management). Cost-aware is the
  // default, matching CacheOptions; benchmarks flip this to compare against plain LRU.
  EvictionPolicy cache_policy = EvictionPolicy::kCostAware;

  WallClock warmup = Seconds(6);
  WallClock measure = Seconds(15);
  WallClock maintenance_interval = Seconds(5);  // pincushion sweep + vacuum cadence

  // --- bulk-value workload overlay (size-aware admission experiments) ---
  // With this probability an interaction additionally fetches one "bulk attachment" through
  // a MAKE-CACHEABLE wrapper whose result is padded to a skewed size mix (75% small / 20%
  // medium / 5% large by default). Size classes are deliberately churn-correlated: large
  // blobs key on Zipf-hot *active items* (whose rows the bid traffic updates constantly, so
  // their entries are invalidated quickly), medium blobs on arbitrary items, small blobs on
  // users (rarely updated) — per-function learned lifetimes therefore differ by an order of
  // magnitude, which is what the TTL-learning subsystem feeds on. 0 disables the overlay.
  double bulk_fraction = 0.0;
  size_t bulk_small_bytes = 4 << 10;
  size_t bulk_medium_bytes = 64 << 10;
  size_t bulk_large_bytes = 1 << 20;
  double bulk_medium_fraction = 0.20;
  double bulk_large_fraction = 0.05;
  // Feedback-loop pacing: when the advisory hints for the large class report a decline rate
  // above this threshold, the generator downgrades that fetch to the small class (adapting
  // fill sizing to what the cache will actually store). > 1 disables adaptation.
  double bulk_downgrade_decline_rate = 0.5;

  // --- membership churn (fault injection) ---
  // At churn_start the victim node fails (and leaves the ring under kLeaveRejoin); after
  // churn_down_time it rejoins through the join protocol — catch-up from the bus's bounded
  // history or flush, decided by how far the stream moved while it was down (bounded by
  // churn_history_limit). churn_period > 0 repeats the kill/rejoin cycle.
  ChurnKind churn = ChurnKind::kNone;
  size_t churn_victim = 0;
  WallClock churn_start = Seconds(8);
  WallClock churn_down_time = Seconds(2);
  WallClock churn_period = 0;            // 0 = one-shot
  size_t churn_history_limit = 4096;     // invalidation-bus history retained for catch-up

  // --- warm rejoin (snapshot persistence) ---
  // Optional snapshot store wired into every cache node (caller-owned, must outlive the
  // sim). With it attached, nodes persist periodically and a churn rejoin whose catch-up
  // replay fails restores the freshest snapshot instead of flushing.
  SnapshotStore* snapshot_store = nullptr;
  // Alternative to snapshot_store: a directory the sim backs with its own FileSnapshotStore
  // (created on construction, owned by the sim). Snapshots then survive the process, so a
  // restarted sim — or a real node pointed at the same directory — rejoins warm. Ignored
  // when snapshot_store is set.
  std::string snapshot_dir;
  uint64_t snapshot_interval_messages = 256;

  // --- hot-key replication ---
  size_t replication = 1;        // replica-set size R (1 = primary only, replication off)
  size_t hot_keys_per_node = 16; // ReplicateHotKeys budget per maintenance tick

  // --- flash-crowd overlay (hot-key replication experiments) ---
  // From flash_crowd_start on, each bulk fetch is redirected with probability
  // flash_crowd_fraction onto one of flash_crowd_hot_keys fixed users — a sudden ~100x skew
  // shift onto a handful of keys. Combined with churn on those keys' owner it is the §4
  // flash-crowd-meets-node-loss scenario: without replication the crowd's keys turn into a
  // miss storm; with replication the ring successors keep serving them. Requires the bulk
  // overlay (bulk_fraction > 0) for the MAKE-CACHEABLE wrappers. 0 disables.
  WallClock flash_crowd_start = 0;
  double flash_crowd_fraction = 0.9;
  size_t flash_crowd_hot_keys = 4;

  CostModel cost;
  uint64_t seed = 1;
  // Engine options (ablations: stock visibility-first ordering, tag thresholds, ...).
  Database::Options db_options;
};

struct SimResult {
  double throughput_rps = 0;
  double avg_response_ms = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;
  double db_cpu_utilization = 0;
  double db_disk_utilization = 0;
  double web_utilization = 0;
  double cache_utilization = 0;
  CacheStats cache;        // measure-window deltas, aggregated over nodes
  ClientStats clients;     // measure-window deltas, aggregated over sessions
  size_t cache_bytes_used = 0;
  size_t pinned_snapshots = 0;
  size_t db_bytes = 0;
  // Largest backlog (seconds of queued work) left on any resource when the window closed. A
  // large value means offered load exceeded capacity unsustainably: completions measured in
  // the window overstate what the system can sustain. PeakThroughput rejects such runs.
  double max_backlog_s = 0;
  // Membership churn events that fired during the whole run (warmup included).
  uint64_t churn_kills = 0;
  uint64_t churn_rejoins = 0;
  // Bulk-value overlay: attachments fetched, and large fetches downgraded to small because
  // the advisory hints reported the cache declining the large class (whole run).
  uint64_t bulk_calls = 0;
  uint64_t bulk_downgrades = 0;
  // Hot-key replication (whole run): bulk fetches redirected onto the flash-crowd hot set,
  // accepted replica pushes, lookups a replica answered after the primary was unavailable,
  // and rejoins the snapshot store turned warm.
  uint64_t flash_crowd_calls = 0;
  uint64_t replica_pushes = 0;
  uint64_t replica_redirects = 0;
  uint64_t join_snapshot_restores = 0;
  // Optimistic read/write transactions (measure-window deltas; nonzero only with
  // SimConfig::optimistic_writes): commits, aborts, and abort-and-retry rounds.
  uint64_t rw_commits = 0;
  uint64_t rw_aborts = 0;
  uint64_t rw_retries = 0;
};

class ClusterSim {
 public:
  explicit ClusterSim(SimConfig config);
  ~ClusterSim();

  // Loads the dataset, optionally warms the cache, runs the closed loop, returns metrics.
  Result<SimResult> Run();

  Database* db() { return db_.get(); }

 private:
  void ScheduleClient(size_t idx, WallClock at);
  void RunClientInteraction(size_t idx);
  // Bulk-value overlay: one extra RO transaction fetching a padded attachment through the
  // per-client MAKE-CACHEABLE wrappers (see SimConfig::bulk_fraction).
  void RunBulkFetch(size_t idx);
  ClientStats AggregateClientStats() const;

  SimConfig config_;
  EventQueue queue_;
  std::unique_ptr<SimClock> clock_;
  std::unique_ptr<Database> db_;
  // Owned store backing SimConfig::snapshot_dir (null when unset or snapshot_store given).
  std::unique_ptr<FileSnapshotStore> owned_snapshot_store_;
  InvalidationBus bus_;
  std::vector<std::unique_ptr<CacheServer>> cache_nodes_;
  CacheCluster cluster_;
  std::unique_ptr<Pincushion> pincushion_;
  std::unique_ptr<rubis::RubisDataset> dataset_;
  std::vector<std::unique_ptr<TxCacheClient>> clients_;
  std::vector<std::unique_ptr<rubis::RubisSession>> sessions_;
  // Per-client bulk-attachment wrappers (empty unless the overlay is enabled). Separate
  // MAKE-CACHEABLE names per size class give each class its own admission profile, learned
  // lifetime and advisory hints.
  std::vector<CacheableFunction<std::string, int64_t>> bulk_small_;
  std::vector<CacheableFunction<std::string, int64_t>> bulk_medium_;
  std::vector<CacheableFunction<std::string, int64_t>> bulk_large_;
  // Flash-crowd hot set: fixed user ids drawn once at startup (see
  // SimConfig::flash_crowd_start).
  std::vector<int64_t> flash_crowd_ids_;
  std::unique_ptr<Rng> rng_;

  // Resources.
  std::vector<SimResource> web_;
  SimResource db_cpu_;
  SimResource db_disk_;
  SimResource cache_tier_;
  SimResource pincushion_res_;

  // Measurement.
  bool measuring_ = false;
  uint64_t completed_ = 0;
  uint64_t failed_ = 0;
  WallClock response_total_ = 0;
  size_t dataset_bytes_ = 0;
  size_t buffer_bytes_ = 0;

  // Membership churn.
  uint64_t churn_kills_ = 0;
  uint64_t churn_rejoins_ = 0;

  // Bulk-value overlay.
  uint64_t bulk_calls_ = 0;
  uint64_t bulk_downgrades_ = 0;

  // Optimistic-writes backoff: total delay the clients' rw_backoff_sleep hook asked for.
  // RunClientInteraction charges the per-interaction delta to that interaction's response
  // time (the sim is single-threaded, so a simple accumulator is race-free).
  WallClock rw_backoff_accum_ = 0;

  // Flash-crowd overlay.
  uint64_t flash_crowd_calls_ = 0;
};

// Convenience: runs configurations with increasing client counts until throughput stops
// improving, returning the best (the paper reports peak throughput over offered load).
SimResult PeakThroughput(const SimConfig& base, double improvement_threshold = 0.03);

}  // namespace txcache::sim

#endif  // SRC_SIM_CLUSTER_SIM_H_
