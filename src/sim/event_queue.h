// Discrete-event simulation core: a time-ordered event queue and a Clock view of virtual time.
//
// The simulator executes application logic against the *real* database/cache/pincushion
// components; the event queue only models time — client think times, network latency, and
// queueing at the cluster's resources (web-server CPU, database CPU, disk, cache nodes).
#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/util/clock.h"
#include "src/util/types.h"

namespace txcache::sim {

class EventQueue {
 public:
  using Fn = std::function<void()>;

  void Schedule(WallClock at, Fn fn) {
    if (at < now_) {
      at = now_;  // never schedule into the past
    }
    heap_.push(Event{at, next_seq_++, std::move(fn)});
  }
  void ScheduleAfter(WallClock delay, Fn fn) { Schedule(now_ + delay, std::move(fn)); }

  // Runs the earliest event; returns false if the queue is empty.
  bool RunNext() {
    if (heap_.empty()) {
      return false;
    }
    // Moving out of a priority_queue requires const_cast; the element is popped immediately.
    Event ev = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    now_ = ev.at;
    ev.fn();
    return true;
  }

  // Runs events until virtual time would exceed `until` (events at exactly `until` run).
  void RunUntil(WallClock until) {
    while (!heap_.empty() && heap_.top().at <= until) {
      RunNext();
    }
    if (now_ < until) {
      now_ = until;
    }
  }

  WallClock now() const { return now_; }
  size_t pending() const { return heap_.size(); }

 private:
  struct Event {
    WallClock at;
    uint64_t seq;  // FIFO tiebreaker for simultaneous events
    Fn fn;
    bool operator>(const Event& o) const {
      return at != o.at ? at > o.at : seq > o.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
  WallClock now_ = 0;
  uint64_t next_seq_ = 0;
};

// Clock adapter exposing the queue's virtual time to the production components.
class SimClock final : public Clock {
 public:
  explicit SimClock(const EventQueue* queue) : queue_(queue) {}
  WallClock Now() const override { return queue_->now(); }

 private:
  const EventQueue* queue_;
};

// A FIFO-queued resource with a single service center (M/G/1-style): requests arriving at a
// busy resource wait for everything ahead of them. Models one CPU, one disk, or an aggregated
// tier (service time divided by the number of members).
class SimResource {
 public:
  explicit SimResource(double servers = 1.0) : servers_(servers) {}

  // Serves `service` time of work arriving at `now`; returns the completion time.
  WallClock Serve(WallClock now, WallClock service) {
    const WallClock effective = static_cast<WallClock>(static_cast<double>(service) / servers_);
    const WallClock start = std::max(now, busy_until_);
    busy_until_ = start + effective;
    busy_time_ += effective;
    return busy_until_;
  }

  WallClock busy_time() const { return busy_time_; }
  WallClock busy_until() const { return busy_until_; }

 private:
  double servers_;
  WallClock busy_until_ = 0;
  WallClock busy_time_ = 0;
};

}  // namespace txcache::sim

#endif  // SRC_SIM_EVENT_QUEUE_H_
