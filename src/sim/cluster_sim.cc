#include "src/sim/cluster_sim.h"

#include <algorithm>

namespace txcache::sim {

ClusterSim::ClusterSim(SimConfig config)
    : config_(config),
      bus_(config.churn_history_limit),
      db_cpu_(1.0),
      db_disk_(1.0),
      cache_tier_(static_cast<double>(config.num_cache_nodes)),
      pincushion_res_(1.0) {
  clock_ = std::make_unique<SimClock>(&queue_);
  rng_ = std::make_unique<Rng>(config_.seed ^ 0xdecafbadull);
  db_ = std::make_unique<Database>(clock_.get(), config.db_options);
  for (size_t i = 0; i < config_.num_web_servers; ++i) {
    web_.emplace_back(1.0);
  }
}

ClusterSim::~ClusterSim() {
  // Sessions (and their clients) must go away before the components they point into.
  sessions_.clear();
  clients_.clear();
}

Result<SimResult> ClusterSim::Run() {
  // --- build the cluster ---
  CacheServer::Options cache_options;
  cache_options.capacity_bytes = config_.cache_bytes_per_node;
  cache_options.max_staleness = std::max<WallClock>(config_.staleness * 4, Seconds(10));
  cache_options.num_shards = std::max<size_t>(config_.cost.cache_shards_per_node, 1);
  cache_options.policy = config_.cache_policy;
  cache_options.snapshot_interval_messages = config_.snapshot_interval_messages;
  SnapshotStore* snapshot_store = config_.snapshot_store;
  if (snapshot_store == nullptr && !config_.snapshot_dir.empty()) {
    owned_snapshot_store_ = std::make_unique<FileSnapshotStore>(config_.snapshot_dir);
    snapshot_store = owned_snapshot_store_.get();
  }
  for (size_t i = 0; i < config_.num_cache_nodes; ++i) {
    cache_nodes_.push_back(std::make_unique<CacheServer>("cache-" + std::to_string(i),
                                                         clock_.get(), cache_options));
    if (snapshot_store != nullptr) {
      cache_nodes_.back()->set_snapshot_store(snapshot_store);
    }
    cluster_.AddNode(cache_nodes_.back().get());
    bus_.Subscribe(cache_nodes_.back().get());
  }
  cluster_.set_replication(config_.replication);
  // Invalidation stream flows through the event queue with one-way network latency.
  bus_.SetDeliveryHook([this](InvalidationSubscriber* sub, const InvalidationMessage& msg) {
    queue_.ScheduleAfter(config_.cost.network_rtt / 2,
                         [sub, msg] { sub->Deliver(msg); });
  });
  pincushion_ = std::make_unique<Pincushion>(db_.get(), clock_.get());

  // --- load the dataset ---
  auto dataset_or = rubis::LoadRubis(db_.get(), config_.scale, clock_.get(), config_.seed);
  if (!dataset_or.ok()) {
    return dataset_or.status();
  }
  dataset_ = std::move(dataset_or.value());
  // Wire the database's commit-time invalidation publishing to the bus only now: the bulk
  // load above is not application traffic, and the cache is still empty. From here on every
  // update transaction feeds the live stream the nodes (and the churn rejoin protocol)
  // depend on. Before this fix the sim ran with no invalidation stream at all — cache nodes
  // never saw a truncation, so churn catch-up had nothing to replay and consistency under
  // writes was unexercised.
  db_->set_invalidation_bus(&bus_);
  dataset_bytes_ = db_->ApproximateDataBytes();
  buffer_bytes_ = config_.cost.buffer_cache_bytes != 0
                      ? config_.cost.buffer_cache_bytes
                      : (config_.disk_bound ? dataset_bytes_ / 4 : dataset_bytes_ * 2);

  // --- create sessions ---
  TxCacheClient::Options client_options;
  client_options.default_staleness = config_.staleness;
  client_options.mode = config_.mode;
  // Fill costs shipped with inserts must be priced in the same currency the simulator charges,
  // so the cost-aware policy optimizes exactly the resource the bottleneck is measured in.
  client_options.fill_cost_per_query = config_.cost.db_query_base;
  client_options.fill_cost_per_tuple = config_.cost.db_per_tuple;
  client_options.fill_cost_per_probe = config_.cost.db_per_probe;
  if (config_.optimistic_writes) {
    // Backoff must cost simulated time, not wall time: the hook accumulates the delay and
    // RunClientInteraction adds it to the interaction's response.
    client_options.rw_backoff_sleep = [this](WallClock delay) { rw_backoff_accum_ += delay; };
  }
  clients_.reserve(config_.num_clients);
  sessions_.reserve(config_.num_clients);
  for (size_t i = 0; i < config_.num_clients; ++i) {
    // Per-client backoff seeds keep concurrent retry schedules desynchronized.
    client_options.rw_backoff_seed = config_.seed * 0x9e3779b97f4a7c15ull + i;
    clients_.push_back(std::make_unique<TxCacheClient>(db_.get(), pincushion_.get(), &cluster_,
                                                       clock_.get(), client_options));
    sessions_.push_back(std::make_unique<rubis::RubisSession>(
        clients_.back().get(), dataset_.get(), clock_.get(), config_.seed * 7919 + i));
    sessions_.back()->set_optimistic_writes(config_.optimistic_writes);
  }
  if (config_.bulk_fraction > 0.0) {
    // Bulk-attachment wrappers, one per client and size class. Each calls a real (nested)
    // cacheable lookup so the padded result inherits genuine invalidation tags: large blobs
    // depend on Zipf-hot active items (bid traffic updates them constantly → short learned
    // lifetimes), medium on arbitrary items, small on users (rarely updated → long ones).
    bulk_small_.reserve(config_.num_clients);
    bulk_medium_.reserve(config_.num_clients);
    bulk_large_.reserve(config_.num_clients);
    for (size_t i = 0; i < config_.num_clients; ++i) {
      rubis::RubisSession* session = sessions_[i].get();
      TxCacheClient* client = clients_[i].get();
      auto pad_user = [session, this](int64_t id, size_t bytes) {
        rubis::UserInfo u = session->app().get_user(id);
        std::string body = u.nickname;
        body.resize(std::max(bytes, body.size()), 'b');
        return body;
      };
      auto pad_item = [session, this](int64_t id, size_t bytes) {
        rubis::ItemInfo item = session->app().get_item(id);
        std::string body = item.name;
        body.resize(std::max(bytes, body.size()), 'b');
        return body;
      };
      bulk_small_.push_back(client->MakeCacheable<std::string, int64_t>(
          "bulk_small", [pad_user, this](int64_t id) {
            return pad_user(id, config_.bulk_small_bytes);
          }));
      bulk_medium_.push_back(client->MakeCacheable<std::string, int64_t>(
          "bulk_medium", [pad_item, this](int64_t id) {
            return pad_item(id, config_.bulk_medium_bytes);
          }));
      bulk_large_.push_back(client->MakeCacheable<std::string, int64_t>(
          "bulk_large", [pad_item, this](int64_t id) {
            return pad_item(id, config_.bulk_large_bytes);
          }));
    }
  }

  // --- maintenance loop (pincushion sweep + vacuum, as the real deployment would run) ---
  std::function<void()> maintenance = [this, &maintenance] {
    pincushion_->Sweep();
    db_->Vacuum();
    if (config_.replication > 1) {
      // Hot-key replication rides the maintenance cadence: each node drains its sketch and
      // pushes its hottest keys to their ring successors.
      cluster_.ReplicateHotKeys(config_.hot_keys_per_node);
    }
    queue_.ScheduleAfter(config_.maintenance_interval, maintenance);
  };
  queue_.ScheduleAfter(config_.maintenance_interval, maintenance);

  // --- flash-crowd hot set (fixed for the whole run) ---
  if (config_.flash_crowd_start > 0 && config_.bulk_fraction > 0.0) {
    flash_crowd_ids_.reserve(config_.flash_crowd_hot_keys);
    for (size_t i = 0; i < config_.flash_crowd_hot_keys; ++i) {
      flash_crowd_ids_.push_back(dataset_->PickUser(*rng_));
    }
  }

  // --- membership churn (fault injection) ---
  // kill: the victim crashes (and leaves the ring under kLeaveRejoin) — in-flight and future
  // traffic to it degrades to misses. rejoin: the victim runs the join protocol against the
  // bus (catch-up from bounded history, or flush when the stream moved too far) and, once
  // back, re-enters the ring. The cycle optionally repeats every churn_period. Each QUEUED
  // event holds a strong ref so a cycle left in the queue past the end of this scope never
  // dangles; the callable itself holds only a weak self-ref (a strong one would be a
  // shared_ptr cycle — it leaked every churn run until the ASan pass caught it). The lock
  // below always succeeds: we only execute through an event's strong ref.
  auto churn_cycle = std::make_shared<std::function<void(bool)>>();
  *churn_cycle = [this, weak_cycle = std::weak_ptr<std::function<void(bool)>>(churn_cycle)](
                     bool kill) {
    auto churn_cycle = weak_cycle.lock();
    if (churn_cycle == nullptr) {
      return;
    }
    CacheServer* victim = cache_nodes_[config_.churn_victim % cache_nodes_.size()].get();
    if (kill) {
      if (config_.churn == ChurnKind::kLeaveRejoin) {
        cluster_.RemoveNode(victim->name());
      }
      victim->Crash();
      ++churn_kills_;
      queue_.ScheduleAfter(config_.churn_down_time, [churn_cycle] { (*churn_cycle)(false); });
      return;
    }
    victim->Join(&bus_);  // barrier first: no serving until caught up
    if (config_.churn == ChurnKind::kLeaveRejoin) {
      cluster_.AddNode(victim);
    }
    ++churn_rejoins_;
    if (config_.churn_period > 0) {
      // Next kill fires one period after the previous one; a period shorter than the down
      // time degenerates to killing again immediately after the rejoin.
      const WallClock wait = config_.churn_period > config_.churn_down_time
                                 ? config_.churn_period - config_.churn_down_time
                                 : WallClock{0};
      queue_.ScheduleAfter(wait, [churn_cycle] { (*churn_cycle)(true); });
    }
  };
  if (config_.churn != ChurnKind::kNone && !cache_nodes_.empty()) {
    queue_.Schedule(queue_.now() + config_.churn_start, [churn_cycle] { (*churn_cycle)(true); });
  }

  // --- clients start staggered across one think time ---
  for (size_t i = 0; i < config_.num_clients; ++i) {
    ScheduleClient(i, queue_.now() + static_cast<WallClock>(rng_->UniformReal(
                           0, static_cast<double>(config_.think_time_mean))));
  }

  // --- warmup, then reset measurement state ---
  const WallClock start = queue_.now();
  CacheStats cache_at_warmup;
  ClientStats clients_at_warmup;
  WallClock db_cpu_busy_at_warmup = 0, db_disk_busy_at_warmup = 0, web_busy_at_warmup = 0,
            cache_busy_at_warmup = 0;
  queue_.Schedule(start + config_.warmup, [&] {
    measuring_ = true;
    completed_ = 0;
    failed_ = 0;
    response_total_ = 0;
    cache_at_warmup = cluster_.TotalStats();
    clients_at_warmup = AggregateClientStats();
    db_cpu_busy_at_warmup = db_cpu_.busy_time();
    db_disk_busy_at_warmup = db_disk_.busy_time();
    for (const SimResource& w : web_) {
      web_busy_at_warmup += w.busy_time();
    }
    cache_busy_at_warmup = cache_tier_.busy_time();
  });

  queue_.RunUntil(start + config_.warmup + config_.measure);
  measuring_ = false;

  // --- collect metrics over the measurement window ---
  SimResult result;
  const double window_s = ToSeconds(config_.measure);
  result.completed = completed_;
  result.failed = failed_;
  result.throughput_rps = static_cast<double>(completed_) / window_s;
  result.avg_response_ms =
      completed_ == 0 ? 0
                      : static_cast<double>(response_total_) / 1000.0 /
                            static_cast<double>(completed_);
  result.cache = cluster_.TotalStats();
  result.cache -= cache_at_warmup;
  result.clients = AggregateClientStats();
  result.clients -= clients_at_warmup;
  const double window = static_cast<double>(config_.measure);
  result.db_cpu_utilization =
      static_cast<double>(db_cpu_.busy_time() - db_cpu_busy_at_warmup) / window;
  result.db_disk_utilization =
      static_cast<double>(db_disk_.busy_time() - db_disk_busy_at_warmup) / window;
  WallClock web_busy = 0;
  for (const SimResource& w : web_) {
    web_busy += w.busy_time();
  }
  result.web_utilization = static_cast<double>(web_busy - web_busy_at_warmup) /
                           (window * static_cast<double>(config_.num_web_servers));
  result.cache_utilization =
      static_cast<double>(cache_tier_.busy_time() - cache_busy_at_warmup) / window;
  result.cache_bytes_used = cluster_.TotalBytesUsed();
  result.pinned_snapshots = db_->pinned_snapshot_count();
  result.db_bytes = dataset_bytes_;
  const WallClock window_end = queue_.now();
  WallClock backlog = std::max<WallClock>(
      {db_cpu_.busy_until() - window_end, db_disk_.busy_until() - window_end,
       cache_tier_.busy_until() - window_end, WallClock{0}});
  for (const SimResource& w : web_) {
    backlog = std::max(backlog, w.busy_until() - window_end);
  }
  result.max_backlog_s = ToSeconds(backlog);
  result.churn_kills = churn_kills_;
  result.churn_rejoins = churn_rejoins_;
  result.bulk_calls = bulk_calls_;
  result.bulk_downgrades = bulk_downgrades_;
  result.flash_crowd_calls = flash_crowd_calls_;
  result.replica_pushes = cluster_.replica_pushes();
  result.replica_redirects = cluster_.replica_redirects();
  result.join_snapshot_restores = result.cache.join_snapshot_restores;
  result.rw_commits = result.clients.rw_commits;
  result.rw_aborts = result.clients.rw_aborts;
  result.rw_retries = result.clients.rw_retries;
  return result;
}

void ClusterSim::RunBulkFetch(size_t idx) {
  TxCacheClient* client = clients_[idx].get();
  if (!client->BeginRO().ok()) {
    return;
  }
  ++bulk_calls_;
  if (!flash_crowd_ids_.empty() && queue_.now() >= config_.flash_crowd_start &&
      rng_->UniformReal(0, 1) < config_.flash_crowd_fraction) {
    // Flash crowd: the population piles onto the fixed hot set — a sudden skew shift of
    // orders of magnitude onto a handful of keys. These ride the small class (user-keyed),
    // so the hot-key sketch sees them as ordinary lookups and replication can spread them.
    const size_t pick = static_cast<size_t>(rng_->UniformReal(
                            0, static_cast<double>(flash_crowd_ids_.size()))) %
                        flash_crowd_ids_.size();
    ++flash_crowd_calls_;
    bulk_small_[idx](flash_crowd_ids_[pick]);
    client->Commit();
    return;
  }
  const double roll = rng_->UniformReal(0, 1);
  if (roll < config_.bulk_large_fraction) {
    // Feedback loop: if the fleet's advisory hints say large fills are being declined,
    // downgrade to the small class — the generator adapts its fill sizing to what the cache
    // will actually store instead of recomputing multi-MB blobs it can never cache.
    auto hints = bulk_large_[idx].hints();
    if (hints.has_value() && hints->decline_rate > config_.bulk_downgrade_decline_rate) {
      ++bulk_downgrades_;
      bulk_small_[idx](dataset_->PickUser(*rng_));
    } else {
      bulk_large_[idx](dataset_->PickActiveItem(*rng_));
    }
  } else if (roll < config_.bulk_large_fraction + config_.bulk_medium_fraction) {
    bulk_medium_[idx](dataset_->PickAnyItem(*rng_));
  } else {
    bulk_small_[idx](dataset_->PickUser(*rng_));
  }
  client->Commit();
}

ClientStats ClusterSim::AggregateClientStats() const {
  ClientStats total;
  for (const auto& c : clients_) {
    total += c->stats();
  }
  return total;
}

void ClusterSim::ScheduleClient(size_t idx, WallClock at) {
  queue_.Schedule(at, [this, idx] { RunClientInteraction(idx); });
}

void ClusterSim::RunClientInteraction(size_t idx) {
  const WallClock t0 = queue_.now();
  TxCacheClient* client = clients_[idx].get();
  rubis::RubisSession* session = sessions_[idx].get();

  const ClientStats before = client->stats();
  const WallClock backoff_before = rw_backoff_accum_;
  rubis::Interaction interaction = session->Next();
  const Status st = session->Run(interaction);
  if (config_.bulk_fraction > 0.0 && rng_->UniformReal(0, 1) < config_.bulk_fraction) {
    // The attachment fetch rides inside the same before/after window, so its cache and
    // database work is charged to the resource chain like any other interaction work.
    RunBulkFetch(idx);
  }
  const ClientStats after = client->stats();

  // --- translate measured work into service demands ---
  const CostModel& c = config_.cost;
  const uint64_t queries = after.db_queries - before.db_queries;
  const uint64_t tuples = after.db_tuples_examined - before.db_tuples_examined;
  const uint64_t probes = after.db_index_probes - before.db_index_probes;
  const uint64_t writes = after.db_writes - before.db_writes;
  const uint64_t cacheable = after.cacheable_calls - before.cacheable_calls;
  const uint64_t cache_ops = (after.cache_hits - before.cache_hits) +
                             (after.cache_misses - before.cache_misses) +
                             (after.cache_inserts - before.cache_inserts) +
                             (after.inserts_declined - before.inserts_declined) +
                             (after.inserts_declined_too_large -
                              before.inserts_declined_too_large);
  const uint64_t pincushion_ops =
      (after.ro_txns - before.ro_txns) + (after.pins_created - before.pins_created);
  const bool used_db = queries + writes > 0;

  WallClock web_cost = c.web_base + c.web_per_cacheable * cacheable +
                       c.web_per_db_query * (queries + writes);
  WallClock db_cost = 0;
  if (used_db) {
    db_cost = c.db_begin + c.db_query_base * queries + c.db_per_tuple * tuples +
              c.db_per_probe * probes + c.db_per_write * writes;
    if (writes > 0) {
      db_cost += c.db_commit;
    }
  }
  WallClock disk_cost = 0;
  if (used_db && dataset_bytes_ > buffer_bytes_) {
    // Expected fraction of page touches that miss the buffer cache. Queries suppressed by the
    // application cache are the hot ones — the same ones the DB buffer holds (§8.1) — so the
    // queries still reaching the database are biased cold, in proportion to the hit rate.
    double miss_prob =
        1.0 - static_cast<double>(buffer_bytes_) / static_cast<double>(dataset_bytes_);
    const CacheStats cache_stats = cluster_.TotalStats();
    if (cache_stats.lookups > 0) {
      const double hit_rate = cache_stats.hit_rate();
      miss_prob = std::min(1.0, miss_prob / std::max(0.05, 1.0 - hit_rate *
                                                               c.buffer_cache_overlap));
    }
    const double page_touches = static_cast<double>(probes) * c.disk_accesses_per_probe +
                                static_cast<double>(tuples) / c.tuples_per_page;
    disk_cost = static_cast<WallClock>(page_touches * miss_prob *
                                       static_cast<double>(c.disk_access));
  }
  // Per-shard contention term: the lock-serialized share of each cache op is amortized
  // across the node's shards (see CostModel::cache_lock_fraction).
  const double shard_factor =
      1.0 - c.cache_lock_fraction +
      c.cache_lock_fraction / static_cast<double>(std::max<size_t>(c.cache_shards_per_node, 1));
  WallClock cache_cost =
      static_cast<WallClock>(static_cast<double>(c.cache_op) * shard_factor) * cache_ops;
  if (config_.cache_policy == EvictionPolicy::kCostAware) {
    // Eviction-policy term: admission bookkeeping + amortized score maintenance per PUT.
    const uint64_t cache_puts = (after.cache_inserts - before.cache_inserts) +
                                (after.inserts_declined - before.inserts_declined) +
                                (after.inserts_declined_too_large -
                                 before.inserts_declined_too_large);
    cache_cost += c.cache_insert_policy_op * cache_puts;
  }
  const WallClock pincushion_cost = c.pincushion_op * pincushion_ops;

  // --- charge the resource chain: web -> pincushion -> cache tier -> db cpu -> db disk ---
  WallClock t = web_[idx % web_.size()].Serve(t0, web_cost);
  if (pincushion_ops > 0) {
    t = pincushion_res_.Serve(t, pincushion_cost) + c.network_rtt;
  }
  if (cache_ops > 0) {
    t = cache_tier_.Serve(t, cache_cost) + c.network_rtt * std::min<uint64_t>(cache_ops, 4);
  }
  if (used_db) {
    t = db_cpu_.Serve(t, db_cost) + c.network_rtt;
    if (disk_cost > 0) {
      t = db_disk_.Serve(t, disk_cost);
    }
  }
  // Optimistic retry backoff: pure waiting — it lengthens this interaction's response but
  // occupies no resource.
  t += rw_backoff_accum_ - backoff_before;

  if (measuring_) {
    if (st.ok()) {
      ++completed_;
      response_total_ += t - t0;
    } else {
      ++failed_;
    }
  }

  const WallClock think = static_cast<WallClock>(
      rng_->Exponential(static_cast<double>(config_.think_time_mean)));
  ScheduleClient(idx, t + think);
}

SimResult PeakThroughput(const SimConfig& base, double improvement_threshold) {
  SimConfig config = base;
  SimResult best;
  int stalled = 0;
  // Offered load doubles until the bottleneck saturates: stop after two consecutive steps that
  // fail to beat the best observed throughput by the threshold (one non-improving step can be
  // closed-loop noise near the knee).
  for (size_t clients = std::max<size_t>(base.num_clients / 4, 50);; clients *= 2) {
    config.num_clients = clients;
    ClusterSim sim(config);
    auto result = sim.Run();
    if (!result.ok()) {
      return best;
    }
    const SimResult& r = result.value();
    // A run that leaves a large unworked backlog is over-saturated: the completions counted in
    // the window (dominated by the cheap, cache-hit paths) overstate sustainable throughput.
    const bool sustainable = r.max_backlog_s <= 0.5 * ToSeconds(config.measure);
    if (sustainable && r.throughput_rps > best.throughput_rps * (1.0 + improvement_threshold)) {
      stalled = 0;
    } else {
      ++stalled;
    }
    if (sustainable && r.throughput_rps > best.throughput_rps) {
      best = r;
    }
    if (stalled >= 2 || clients > 1'000'000) {
      break;
    }
  }
  return best;
}

}  // namespace txcache::sim
