// Service-time cost model for the simulated cluster.
//
// Calibrated against the paper's testbed (§8: 3.2 GHz Xeons, gigabit Ethernet with 0.1 ms RTT,
// 7200 RPM disks; baseline peaks of ~930 req/s in-memory and ~140 req/s disk-bound with one
// database server and seven web servers). Absolute values are estimates; the benchmarks report
// *shapes* (speedups, crossovers), which depend on the ratios, not the absolute scale.
#ifndef SRC_SIM_COST_MODEL_H_
#define SRC_SIM_COST_MODEL_H_

#include <cstddef>

#include "src/util/types.h"

namespace txcache::sim {

struct CostModel {
  // Network.
  WallClock network_rtt = Millis(0.1);

  // Database server.
  WallClock db_begin = Millis(0.02);        // BEGIN/snapshot setup
  WallClock db_query_base = Millis(0.12);   // parse/plan/executor setup per query
  WallClock db_per_tuple = Millis(0.004);   // per heap version examined
  WallClock db_per_probe = Millis(0.015);   // per index descent
  WallClock db_per_write = Millis(0.15);    // per INSERT/UPDATE/DELETE statement
  WallClock db_commit = Millis(0.25);       // commit incl. invalidation publication

  // Disk (only charged when the working set exceeds the buffer cache).
  WallClock disk_access = Millis(4.0);      // average positioning + transfer per random access
  size_t buffer_cache_bytes = 0;            // 0 => sized automatically by the simulator
  double disk_accesses_per_probe = 1.0;     // index descent leaf touch
  double tuples_per_page = 64.0;            // heap tuples per disk page (for scans)
  // Hot/hot correlation between the application cache and the database buffer cache (§8.1:
  // frequent queries "are also likely to be in the database's buffer cache"). Queries that
  // still reach the database under caching are biased cold, so their buffer miss probability
  // rises as the cache hit rate grows: p_miss' = min(1, p_miss / (1 - hit_rate * overlap)).
  double buffer_cache_overlap = 0.85;

  // Cache server: per LOOKUP/PUT, including the kernel/TCP overhead the paper observed.
  WallClock cache_op = Millis(0.06);
  // Per-shard contention term. A cache node stripes its state over `cache_shards_per_node`
  // lock shards (CacheOptions::num_shards); `cache_lock_fraction` is the share of cache_op
  // spent inside a shard's critical section. That serialized share is amortized across the
  // stripes, so the effective service demand per op is
  //   cache_op * ((1 - f) + f / shards)
  // — one shard reproduces the old single-mutex node, more shards asymptotically strip the
  // lock out of the op cost. The parallel share is unchanged: it scales with the node count
  // already modeled by the tier resource.
  double cache_lock_fraction = 0.6;
  size_t cache_shards_per_node = 8;
  // Eviction-policy term: extra service demand per PUT under the cost-aware policy — the
  // admission-gate profile update (one small mutex-protected map touch) plus the amortized
  // score-index maintenance and victim selection an insert-triggered eviction performs.
  // Charged only when the simulated fleet runs EvictionPolicy::kCostAware; plain LRU keeps
  // the unadorned cache_op cost.
  WallClock cache_insert_policy_op = Millis(0.004);

  // Web/application server CPU.
  WallClock web_base = Millis(1.0);             // per interaction: dispatch + page assembly
  WallClock web_per_cacheable = Millis(0.05);   // serialize args, hash key, marshal result
  WallClock web_per_db_query = Millis(0.03);    // driver marshaling

  // Pincushion round trip (paper: ~0.2 ms including network).
  WallClock pincushion_op = Millis(0.05);
};

}  // namespace txcache::sim

#endif  // SRC_SIM_COST_MODEL_H_
