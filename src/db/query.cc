#include "src/db/query.h"

#include <cassert>

namespace txcache {

bool Predicate::Eval(const Row& row) const {
  switch (kind) {
    case Kind::kTrue:
      return true;
    case Kind::kCmp: {
      const Value& lhs = row[column];
      // SQL semantics: comparisons against NULL are not satisfied.
      if (lhs.is_null() || rhs.is_null()) {
        return false;
      }
      const int c = lhs.Compare(rhs);
      switch (op) {
        case CmpOp::kEq:
          return c == 0;
        case CmpOp::kNe:
          return c != 0;
        case CmpOp::kLt:
          return c < 0;
        case CmpOp::kLe:
          return c <= 0;
        case CmpOp::kGt:
          return c > 0;
        case CmpOp::kGe:
          return c >= 0;
      }
      return false;
    }
    case Kind::kColumnCmp: {
      const Value& lhs = row[column];
      const Value& r = row[rhs_column];
      if (lhs.is_null() || r.is_null()) {
        return false;
      }
      const int c = lhs.Compare(r);
      switch (op) {
        case CmpOp::kEq:
          return c == 0;
        case CmpOp::kNe:
          return c != 0;
        case CmpOp::kLt:
          return c < 0;
        case CmpOp::kLe:
          return c <= 0;
        case CmpOp::kGt:
          return c > 0;
        case CmpOp::kGe:
          return c >= 0;
      }
      return false;
    }
    case Kind::kAnd:
      for (const PredicatePtr& c : children) {
        if (!c->Eval(row)) {
          return false;
        }
      }
      return true;
    case Kind::kOr:
      for (const PredicatePtr& c : children) {
        if (c->Eval(row)) {
          return true;
        }
      }
      return false;
    case Kind::kNot:
      assert(children.size() == 1);
      return !children[0]->Eval(row);
    case Kind::kIsNull:
      return row[column].is_null();
  }
  return false;
}

PredicatePtr PTrue() {
  auto p = std::make_shared<Predicate>();
  p->kind = Predicate::Kind::kTrue;
  return p;
}

PredicatePtr PCmp(uint32_t column, CmpOp op, Value rhs) {
  auto p = std::make_shared<Predicate>();
  p->kind = Predicate::Kind::kCmp;
  p->column = column;
  p->op = op;
  p->rhs = std::move(rhs);
  return p;
}

PredicatePtr PEq(uint32_t column, Value rhs) { return PCmp(column, CmpOp::kEq, std::move(rhs)); }

PredicatePtr PColumnCmp(uint32_t lhs_column, CmpOp op, uint32_t rhs_column) {
  auto p = std::make_shared<Predicate>();
  p->kind = Predicate::Kind::kColumnCmp;
  p->column = lhs_column;
  p->op = op;
  p->rhs_column = rhs_column;
  return p;
}

PredicatePtr PIsNull(uint32_t column) {
  auto p = std::make_shared<Predicate>();
  p->kind = Predicate::Kind::kIsNull;
  p->column = column;
  return p;
}

PredicatePtr PAnd(std::vector<PredicatePtr> children) {
  auto p = std::make_shared<Predicate>();
  p->kind = Predicate::Kind::kAnd;
  p->children = std::move(children);
  return p;
}

PredicatePtr POr(std::vector<PredicatePtr> children) {
  auto p = std::make_shared<Predicate>();
  p->kind = Predicate::Kind::kOr;
  p->children = std::move(children);
  return p;
}

PredicatePtr PNot(PredicatePtr child) {
  auto p = std::make_shared<Predicate>();
  p->kind = Predicate::Kind::kNot;
  p->children.push_back(std::move(child));
  return p;
}

}  // namespace txcache
