// Ordered secondary indexes.
//
// Like Postgres B-trees, an index references every heap version whose key matches — including
// versions that are dead for a given snapshot. Visibility is decided at scan time by the
// executor, which is what lets index scans contribute both result-tuple validity (visible
// matches) and the invalidity mask (matching versions that fail the visibility check).
#ifndef SRC_DB_INDEX_H_
#define SRC_DB_INDEX_H_

#include <map>
#include <optional>
#include <vector>

#include "src/db/heap.h"
#include "src/db/schema.h"
#include "src/db/value.h"

namespace txcache {

class OrderedIndex {
 public:
  explicit OrderedIndex(IndexSchema schema) : schema_(std::move(schema)) {}

  const IndexSchema& schema() const { return schema_; }

  Row ExtractKey(const Row& row) const {
    Row key;
    key.reserve(schema_.columns.size());
    for (ColumnId c : schema_.columns) {
      key.push_back(row[c]);
    }
    return key;
  }

  void Insert(const Row& key, TupleId id) { entries_[key].push_back(id); }

  void Remove(const Row& key, TupleId id) {
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      return;
    }
    auto& vec = it->second;
    for (size_t i = 0; i < vec.size(); ++i) {
      if (vec[i] == id) {
        vec[i] = vec.back();
        vec.pop_back();
        break;
      }
    }
    if (vec.empty()) {
      entries_.erase(it);
    }
  }

  // All heap versions (any visibility) whose key equals `key`.
  const std::vector<TupleId>* Lookup(const Row& key) const {
    auto it = entries_.find(key);
    return it == entries_.end() ? nullptr : &it->second;
  }

  // Visits versions with lo <= key <= hi (either bound optional), in key order.
  template <typename Visitor>  // Visitor: void(const Row& key, TupleId id)
  void Range(const std::optional<Row>& lo, const std::optional<Row>& hi, Visitor&& visit) const {
    auto it = lo ? entries_.lower_bound(*lo) : entries_.begin();
    auto end = hi ? entries_.upper_bound(*hi) : entries_.end();
    for (; it != end; ++it) {
      for (TupleId id : it->second) {
        visit(it->first, id);
      }
    }
  }

  size_t distinct_keys() const { return entries_.size(); }

 private:
  IndexSchema schema_;
  std::map<Row, std::vector<TupleId>> entries_;
};

}  // namespace txcache

#endif  // SRC_DB_INDEX_H_
