// Structured query representation.
//
// The engine exposes a relational-algebra query builder instead of a SQL parser: an access path
// over a base table (sequential scan, index equality, or index range), residual predicates,
// index-nested-loop joins, projection, aggregation with optional GROUP BY, ORDER BY and
// LIMIT/OFFSET. This covers every query the RUBiS and wiki applications issue, while keeping the
// executor small enough to reason about validity tracking precisely.
//
// Column references are *flat* indices into the row built so far: a query over A join B sees
// A's columns first, then B's.
#ifndef SRC_DB_QUERY_H_
#define SRC_DB_QUERY_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/db/value.h"

namespace txcache {

enum class CmpOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

struct Predicate;
using PredicatePtr = std::shared_ptr<const Predicate>;

struct Predicate {
  enum class Kind : uint8_t { kTrue, kCmp, kAnd, kOr, kNot, kIsNull, kColumnCmp };

  Kind kind = Kind::kTrue;
  uint32_t column = 0;  // flat column index (kCmp, kIsNull, kColumnCmp lhs)
  CmpOp op = CmpOp::kEq;
  Value rhs;             // kCmp
  uint32_t rhs_column = 0;  // kColumnCmp
  std::vector<PredicatePtr> children;  // kAnd, kOr, kNot

  bool Eval(const Row& row) const;
};

// --- predicate builders ---
PredicatePtr PTrue();
PredicatePtr PCmp(uint32_t column, CmpOp op, Value rhs);
PredicatePtr PEq(uint32_t column, Value rhs);
PredicatePtr PColumnCmp(uint32_t lhs_column, CmpOp op, uint32_t rhs_column);
PredicatePtr PIsNull(uint32_t column);
PredicatePtr PAnd(std::vector<PredicatePtr> children);
PredicatePtr POr(std::vector<PredicatePtr> children);
PredicatePtr PNot(PredicatePtr child);

// How a table is accessed. The access method determines the invalidation tag the query receives
// (paper §5.3): index equality => TABLE:INDEX=KEY, anything else => TABLE:? wildcard.
struct AccessPath {
  enum class Kind : uint8_t { kSeqScan, kIndexEq, kIndexRange };

  Kind kind = Kind::kSeqScan;
  std::string table;
  std::string index;                // kIndexEq / kIndexRange
  Row eq_key;                       // kIndexEq
  std::optional<Row> range_lo;      // kIndexRange (inclusive)
  std::optional<Row> range_hi;      // kIndexRange (inclusive)

  static AccessPath SeqScan(std::string table) {
    AccessPath p;
    p.kind = Kind::kSeqScan;
    p.table = std::move(table);
    return p;
  }
  static AccessPath IndexEq(std::string table, std::string index, Row key) {
    AccessPath p;
    p.kind = Kind::kIndexEq;
    p.table = std::move(table);
    p.index = std::move(index);
    p.eq_key = std::move(key);
    return p;
  }
  static AccessPath IndexRange(std::string table, std::string index, std::optional<Row> lo,
                               std::optional<Row> hi) {
    AccessPath p;
    p.kind = Kind::kIndexRange;
    p.table = std::move(table);
    p.index = std::move(index);
    p.range_lo = std::move(lo);
    p.range_hi = std::move(hi);
    return p;
  }
};

// Index-nested-loop join step: for each row built so far, probe `index` on `table` with the
// key formed from `key_columns` (flat indices into the current row), append matching tuples.
struct JoinStep {
  std::string table;
  std::string index;
  std::vector<uint32_t> key_columns;
  PredicatePtr residual;  // evaluated on the combined row, before the visibility check
};

enum class AggKind : uint8_t { kCount, kSum, kMin, kMax, kAvg };

struct Aggregate {
  AggKind kind = AggKind::kCount;
  uint32_t column = 0;  // ignored for kCount
};

struct OrderBy {
  uint32_t column = 0;
  bool descending = false;
};

struct Query {
  AccessPath from;
  PredicatePtr where;  // residual predicate on the outer table (may be null => true)
  std::vector<JoinStep> joins;
  std::vector<uint32_t> project;       // empty => all columns
  std::optional<Aggregate> aggregate;  // with optional group_by
  std::optional<uint32_t> group_by;    // flat column index; requires aggregate
  std::vector<OrderBy> order_by;
  size_t limit = 0;   // 0 => unlimited
  size_t offset = 0;

  // Fluent helpers for terse call sites.
  Query& Where(PredicatePtr p) {
    where = std::move(p);
    return *this;
  }
  Query& Join(JoinStep j) {
    joins.push_back(std::move(j));
    return *this;
  }
  Query& Project(std::vector<uint32_t> cols) {
    project = std::move(cols);
    return *this;
  }
  Query& Agg(AggKind kind, uint32_t column = 0) {
    aggregate = Aggregate{kind, column};
    return *this;
  }
  Query& GroupBy(uint32_t column) {
    group_by = column;
    return *this;
  }
  Query& SortBy(uint32_t column, bool descending = false) {
    order_by.push_back(OrderBy{column, descending});
    return *this;
  }
  Query& Limit(size_t n, size_t off = 0) {
    limit = n;
    offset = off;
    return *this;
  }

  static Query From(AccessPath path) {
    Query q;
    q.from = std::move(path);
    return q;
  }
};

}  // namespace txcache

#endif  // SRC_DB_QUERY_H_
