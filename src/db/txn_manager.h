// Transaction manager: transaction-id allocation, the commit log (CLOG), the commit-timestamp
// counter, and the pinned-snapshot registry (paper §5.1).
//
// Commit timestamps are dense ordinals: the n-th committing read/write transaction gets
// timestamp n. A snapshot is identified by the commit timestamp of the last transaction visible
// to it; "pinning" a snapshot (the PIN command the paper adds to Postgres) increments a
// reference count that prevents the vacuum horizon from advancing past it.
#ifndef SRC_DB_TXN_MANAGER_H_
#define SRC_DB_TXN_MANAGER_H_

#include <map>
#include <vector>

#include "src/util/status.h"
#include "src/util/types.h"

namespace txcache {

enum class TxnState : uint8_t { kInProgress, kCommitted, kAborted };

struct TxnRecord {
  TxnState state = TxnState::kInProgress;
  Timestamp commit_ts = kTimestampZero;  // valid iff committed
  WallClock commit_wallclock = 0;        // valid iff committed
  Timestamp snapshot = kTimestampZero;   // snapshot the transaction ran against
  bool read_only = false;
};

// Not thread-safe; the Database serializes access.
class TxnManager {
 public:
  TxnId Begin(Timestamp snapshot, bool read_only) {
    records_.push_back(TxnRecord{TxnState::kInProgress, kTimestampZero, 0, snapshot, read_only});
    return static_cast<TxnId>(records_.size());  // ids are 1-based
  }

  // Assigns the next commit timestamp. Caller supplies the wall-clock time of the commit.
  Timestamp Commit(TxnId id, WallClock now) {
    TxnRecord& r = Record(id);
    r.state = TxnState::kCommitted;
    r.commit_ts = ++latest_commit_ts_;
    r.commit_wallclock = now;
    commit_wallclocks_[r.commit_ts] = now;
    return r.commit_ts;
  }

  void Abort(TxnId id) { Record(id).state = TxnState::kAborted; }

  // Finishes a transaction that performed no writes without consuming a commit timestamp.
  // Such a transaction "ran at" its snapshot; it never appears as an xmin/xmax.
  void FinishReadOnly(TxnId id) {
    TxnRecord& r = Record(id);
    r.state = TxnState::kCommitted;
    r.commit_ts = kTimestampZero;
  }

  TxnState State(TxnId id) const { return Record(id).state; }
  bool IsCommitted(TxnId id) const { return State(id) == TxnState::kCommitted; }
  bool IsAborted(TxnId id) const { return State(id) == TxnState::kAborted; }
  bool IsInProgress(TxnId id) const { return State(id) == TxnState::kInProgress; }
  Timestamp CommitTs(TxnId id) const { return Record(id).commit_ts; }
  const TxnRecord& Record(TxnId id) const { return records_.at(id - 1); }
  TxnRecord& Record(TxnId id) { return records_.at(id - 1); }

  Timestamp latest_commit_ts() const { return latest_commit_ts_; }
  size_t transaction_count() const { return records_.size(); }

  // Wall-clock time at which `ts` was assigned (kTimestampZero maps to the epoch). Used by the
  // pincushion and staleness checks.
  WallClock CommitWallClock(Timestamp ts) const {
    auto it = commit_wallclocks_.find(ts);
    return it == commit_wallclocks_.end() ? 0 : it->second;
  }

  // --- pinned snapshots (PIN / UNPIN) ---

  // Pins the given snapshot (must be <= latest commit ts). Returns its refcount after pinning.
  int Pin(Timestamp snapshot) { return ++pins_[snapshot]; }

  Status Unpin(Timestamp snapshot) {
    auto it = pins_.find(snapshot);
    if (it == pins_.end()) {
      return Status::NotFound("snapshot not pinned");
    }
    if (--it->second == 0) {
      pins_.erase(it);
    }
    return Status::Ok();
  }

  bool IsPinned(Timestamp snapshot) const { return pins_.contains(snapshot); }
  size_t pinned_count() const { return pins_.size(); }

  // Oldest timestamp that any pinned snapshot or in-progress transaction may still read.
  // Versions invisible at and after this horizon can be vacuumed.
  Timestamp VacuumHorizon() const {
    Timestamp horizon = latest_commit_ts_;
    if (!pins_.empty()) {
      horizon = std::min(horizon, pins_.begin()->first);
    }
    for (TxnId id = live_scan_floor_; id <= records_.size(); ++id) {
      const TxnRecord& r = records_[id - 1];
      if (r.state == TxnState::kInProgress) {
        horizon = std::min(horizon, r.snapshot);
      }
    }
    return horizon;
  }

  // Advances the floor below which all transactions are known finished, bounding the
  // VacuumHorizon scan. Called opportunistically by the database.
  void AdvanceLiveScanFloor() {
    while (live_scan_floor_ <= records_.size() &&
           records_[live_scan_floor_ - 1].state != TxnState::kInProgress) {
      ++live_scan_floor_;
    }
  }

  // Prunes commit-wallclock history older than the horizon (bounded memory).
  void PruneWallClockHistory(Timestamp horizon) {
    commit_wallclocks_.erase(commit_wallclocks_.begin(), commit_wallclocks_.lower_bound(horizon));
  }

 private:
  std::vector<TxnRecord> records_;
  Timestamp latest_commit_ts_ = kTimestampZero;
  std::map<Timestamp, int> pins_;                   // snapshot ts -> refcount
  std::map<Timestamp, WallClock> commit_wallclocks_;
  TxnId live_scan_floor_ = 1;
};

}  // namespace txcache

#endif  // SRC_DB_TXN_MANAGER_H_
