// The database engine facade: an in-memory MVCC relational database with snapshot isolation,
// pinned snapshots, per-query validity intervals, and invalidation-tag generation — the
// substrate TxCache's modified PostgreSQL provides in the paper (§5).
//
// Thread safety: all public methods are safe to call concurrently; a single mutex serializes
// engine state (commit order therefore equals invalidation-stream order, which the protocol
// requires).
#ifndef SRC_DB_DATABASE_H_
#define SRC_DB_DATABASE_H_

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/bus/bus.h"
#include "src/db/heap.h"
#include "src/db/index.h"
#include "src/db/query.h"
#include "src/db/schema.h"
#include "src/db/txn_manager.h"
#include "src/util/clock.h"
#include "src/util/interval.h"
#include "src/util/status.h"

namespace txcache {

// Work counters for one query; the simulator's cost model converts these to service time.
struct QueryStats {
  size_t tuples_examined = 0;  // heap versions touched (predicate or visibility evaluated)
  size_t index_probes = 0;     // point lookups (outer access + join probes)
  size_t seq_scanned = 0;      // versions visited by sequential scans
  size_t rows_returned = 0;
};

struct QueryResult {
  std::vector<Row> rows;
  // Range of timestamps over which this result is unchanged; contains the snapshot. Only
  // meaningful for read-only transactions with validity tracking enabled.
  Interval validity;
  std::vector<InvalidationTag> tags;  // sorted, deduplicated
  QueryStats stats;

  bool still_valid() const { return validity.unbounded(); }
};

struct CommitInfo {
  Timestamp ts = kTimestampZero;
  WallClock wallclock = 0;
  size_t invalidation_tags = 0;  // tags published on the invalidation stream
};

struct PinnedSnapshot {
  Timestamp ts = kTimestampZero;
  WallClock wallclock = 0;  // when the snapshot was pinned (database-reported)
};

// One read an optimistic read-write transaction performed outside the engine (through the
// cache, or recomputed at its snapshot): the invalidation tags that cover the read, and the
// last timestamp at which the result is known unchanged — a still-valid cache hit reports the
// shard's applied-invalidation position; a recompute reports the transaction snapshot. Commit
// validation (CommitValidated) accepts the read iff no matching invalidation committed after
// valid_through and at or before the transaction's serialization point.
struct ReadValidationEntry {
  std::vector<InvalidationTag> tags;
  Timestamp valid_through = kTimestampZero;
};

struct DatabaseStats {
  uint64_t queries = 0;
  uint64_t tuples_examined = 0;
  uint64_t inserts = 0;
  uint64_t updates = 0;
  uint64_t deletes = 0;
  uint64_t commits = 0;
  uint64_t aborts = 0;
  uint64_t conflicts = 0;
  uint64_t validated_commits = 0;    // CommitValidated calls that committed
  uint64_t validation_conflicts = 0; // CommitValidated calls aborted by read-set validation
  uint64_t invalidation_messages = 0;
  uint64_t invalidation_tags = 0;
  uint64_t wildcard_collapses = 0;
  uint64_t vacuum_runs = 0;
  uint64_t versions_vacuumed = 0;
};

class Database {
 public:
  struct Options {
    // When false, emulates a stock DBMS: no validity intervals, no invalidation tags. Used by
    // the §8.1 overhead benchmark ("modified vs stock Postgres").
    bool track_validity = true;
    // Evaluate predicates before visibility checks on scans to tighten the invalidity mask
    // (§5.2). When false, uses the stock cheap-check-first order; masks become conservative.
    bool predicate_before_visibility = true;
    // An update transaction touching more than this many distinct tags in one table collapses
    // them into a single TABLE:? wildcard (§5.3).
    size_t wildcard_tag_threshold = 64;
  };

  explicit Database(const Clock* clock) : Database(clock, Options{}) {}
  Database(const Clock* clock, Options options);

  // --- schema ---
  Status CreateTable(TableSchema schema);
  Status CreateIndex(IndexSchema schema);
  const TableSchema* FindTable(const std::string& name) const;
  std::vector<std::string> ListTables() const;
  std::vector<IndexSchema> ListIndexes(const std::string& table) const;

  // --- transactions ---
  // With track_reads set, queries in this read-write transaction also collect invalidation
  // tags (validity intervals stay unbounded — an RW snapshot sees its own uncommitted writes,
  // which have no committed lifetime to intersect). Used by optimistic clients that feed the
  // tags into CommitValidated read sets.
  TxnId BeginReadWrite(bool track_reads = false);
  // Begins a read-only transaction. With no snapshot, runs on the latest committed state. With
  // a snapshot (BEGIN SNAPSHOTID), the snapshot must still be retained (pinned or latest).
  Result<TxnId> BeginReadOnly(std::optional<Timestamp> snapshot = std::nullopt);
  Result<CommitInfo> Commit(TxnId txn);
  // Commit with optimistic read-set validation, all inside the engine's single commit critical
  // section: every entry is checked against the last invalidation matching its tags BEFORE the
  // commit timestamp is assigned, so a read that passes is unchanged through the transaction's
  // serialization point (the fresh commit timestamp for writers; the snapshot for write-free
  // transactions). Any stale read aborts the transaction in place — writes are undone, nothing
  // is published — and returns kConflict; the caller retries with a new transaction. Because
  // commit order equals invalidation order under mu_, success is strict serializability at the
  // returned timestamp. A transaction's own writes never conflict with its reads (the maps are
  // consulted before its tags fold in).
  Result<CommitInfo> CommitValidated(TxnId txn, const std::vector<ReadValidationEntry>& reads);
  Status Abort(TxnId txn);
  Result<Timestamp> SnapshotOf(TxnId txn) const;

  // --- pinned snapshots (PIN / UNPIN) ---
  PinnedSnapshot Pin();
  Status Unpin(Timestamp snapshot);
  Timestamp LatestCommitTs() const;

  // --- queries and DML ---
  Result<QueryResult> Execute(TxnId txn, const Query& query);
  Status Insert(TxnId txn, const std::string& table, Row row);
  // Updates rows matched by (path, where): sets[i] = {column, new value}. Returns #rows.
  Result<size_t> Update(TxnId txn, const std::string& table, const AccessPath& path,
                        const PredicatePtr& where,
                        const std::vector<std::pair<ColumnId, Value>>& sets);
  Result<size_t> Delete(TxnId txn, const std::string& table, const AccessPath& path,
                        const PredicatePtr& where);

  // --- maintenance ---
  // Removes versions invisible to every pinned snapshot and running transaction. Returns the
  // number of versions reclaimed. Safe to run at any time.
  size_t Vacuum();

  // Invalidation stream output (§5.3). Commits of updating transactions publish one message.
  void set_invalidation_bus(InvalidationBus* bus) { bus_ = bus; }

  DatabaseStats stats() const;
  size_t ApproximateDataBytes() const;  // live heap bytes across tables (buffer-cache modeling)
  size_t pinned_snapshot_count() const;

 private:
  struct Table {
    TableSchema schema;
    Heap heap;
    std::vector<std::unique_ptr<OrderedIndex>> indexes;

    OrderedIndex* FindIndex(const std::string& name) const {
      for (const auto& idx : indexes) {
        if (idx->schema().name == name) {
          return idx.get();
        }
      }
      return nullptr;
    }
  };

  struct ActiveTxn {
    TxnId id = kInvalidTxnId;
    bool read_only = false;
    bool track_reads = false;  // collect tags on queries (optimistic RW; see BeginReadWrite)
    Timestamp snapshot = kTimestampZero;
    // Undo log: versions created (to ignore after abort) and xmax stamps placed (to clear).
    std::vector<std::pair<Table*, TupleId>> created;
    std::vector<std::pair<Table*, TupleId>> stamped;
    // Invalidation tags accumulated from writes, grouped per table for wildcard collapsing.
    std::map<std::string, std::set<InvalidationTag>> write_tags;
  };

  // All private helpers assume mu_ is held.
  Table* FindTableLocked(const std::string& name);
  const Table* FindTableLocked(const std::string& name) const;
  Result<ActiveTxn*> GetTxnLocked(TxnId txn);

  bool IsVisible(const TupleVersion& v, Timestamp snapshot, TxnId self) const;

  // Visits versions selected by the access path; fn(TupleId, const TupleVersion&).
  template <typename Fn>
  Status VisitAccessPath(const Table& table, const AccessPath& path, QueryStats* stats,
                         Fn&& fn) const;

  Result<QueryResult> ExecuteLocked(ActiveTxn& txn, const Query& query);
  Status CollectTargetsLocked(ActiveTxn& txn, Table& table, const AccessPath& path,
                              const PredicatePtr& where, std::vector<TupleId>* out,
                              QueryStats* stats);
  Result<CommitInfo> CommitLocked(ActiveTxn& t);
  // Last invalidation timestamp matching one read tag: a concrete tag is hit by the same
  // concrete tag or its table's wildcard; a wildcard (scan) read is hit by anything in the
  // table. Mirrors the shard's three-way history match, last-timestamp-only.
  Timestamp LastInvalidationForLocked(const InvalidationTag& tag) const;
  Status CheckWriteConflict(const TupleVersion& v, TxnId self) const;
  Status CheckUniqueLocked(Table& table, const Row& row, TxnId self,
                           std::optional<TupleId> skip_tuple) const;
  void AddWriteTagsLocked(ActiveTxn& txn, const Table& table, const Row& row);
  void UndoLocked(ActiveTxn& txn);

  mutable std::mutex mu_;
  const Clock* clock_;
  Options options_;
  TxnManager clog_;
  std::map<std::string, std::unique_ptr<Table>> tables_;
  std::unordered_map<TxnId, ActiveTxn> active_;
  InvalidationBus* bus_ = nullptr;
  DatabaseStats stats_;

  // Commit-time read validation state: the last commit timestamp whose invalidation message
  // carried each concrete tag, each table's wildcard, and anything in each table at all.
  // Updated inside Commit while assembling the message (same critical section that orders the
  // stream), so CommitValidated's checks are exact with respect to the total commit order —
  // immune to bus delivery lag.
  std::unordered_map<InvalidationTag, Timestamp, TagHasher> last_concrete_invalidation_;
  std::unordered_map<std::string, Timestamp> last_wildcard_invalidation_;
  std::unordered_map<std::string, Timestamp> last_table_invalidation_;
};

}  // namespace txcache

#endif  // SRC_DB_DATABASE_H_
