#include "src/db/value.h"

#include <sstream>

namespace txcache {

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt:
      return "INT";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
    case ValueType::kBool:
      return "BOOL";
  }
  return "?";
}

int Value::Compare(const Value& o) const {
  if (v_.index() != o.v_.index()) {
    return v_.index() < o.v_.index() ? -1 : 1;
  }
  switch (type()) {
    case ValueType::kNull:
      return 0;
    case ValueType::kInt: {
      int64_t a = AsInt(), b = o.AsInt();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case ValueType::kDouble: {
      double a = AsDouble(), b = o.AsDouble();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case ValueType::kString: {
      int c = AsString().compare(o.AsString());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    case ValueType::kBool: {
      bool a = AsBool(), b = o.AsBool();
      return a == b ? 0 : (a < b ? -1 : 1);
    }
  }
  return 0;
}

size_t Value::ByteSize() const {
  switch (type()) {
    case ValueType::kNull:
      return 1;
    case ValueType::kInt:
    case ValueType::kDouble:
      return 9;
    case ValueType::kBool:
      return 2;
    case ValueType::kString:
      return 5 + AsString().size();
  }
  return 1;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt:
      return std::to_string(AsInt());
    case ValueType::kDouble: {
      std::ostringstream os;
      os << AsDouble();
      return os.str();
    }
    case ValueType::kString:
      return "'" + AsString() + "'";
    case ValueType::kBool:
      return AsBool() ? "true" : "false";
  }
  return "?";
}

void Value::SerializeTo(Writer& w) const {
  w.PutU8(static_cast<uint8_t>(type()));
  switch (type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt:
      w.PutI64(AsInt());
      break;
    case ValueType::kDouble:
      w.PutDouble(AsDouble());
      break;
    case ValueType::kString:
      w.PutString(AsString());
      break;
    case ValueType::kBool:
      w.PutBool(AsBool());
      break;
  }
}

bool Value::DeserializeFrom(Reader& r, Value* out) {
  uint8_t tag;
  if (!r.GetU8(&tag)) {
    return false;
  }
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      *out = Value::Null();
      return true;
    case ValueType::kInt: {
      int64_t v;
      if (!r.GetI64(&v)) {
        return false;
      }
      *out = Value(v);
      return true;
    }
    case ValueType::kDouble: {
      double v;
      if (!r.GetDouble(&v)) {
        return false;
      }
      *out = Value(v);
      return true;
    }
    case ValueType::kString: {
      std::string v;
      if (!r.GetString(&v)) {
        return false;
      }
      *out = Value(std::move(v));
      return true;
    }
    case ValueType::kBool: {
      bool v;
      if (!r.GetBool(&v)) {
        return false;
      }
      *out = Value(v);
      return true;
    }
  }
  return false;
}

size_t RowByteSize(const Row& row) {
  size_t n = sizeof(Row);
  for (const Value& v : row) {
    n += v.ByteSize();
  }
  return n;
}

std::string RowToString(const Row& row) {
  std::ostringstream os;
  os << "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) {
      os << ", ";
    }
    os << row[i].ToString();
  }
  os << ")";
  return os.str();
}

std::string EncodeRow(const Row& row) {
  Writer w;
  w.PutU32(static_cast<uint32_t>(row.size()));
  for (const Value& v : row) {
    v.SerializeTo(w);
  }
  return w.Take();
}

Result<Row> DecodeRow(std::string_view bytes) {
  Reader r(bytes);
  uint32_t n;
  if (!r.GetU32(&n)) {
    return Status::InvalidArgument("malformed row");
  }
  Row row;
  row.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Value v;
    if (!Value::DeserializeFrom(r, &v)) {
      return Status::InvalidArgument("malformed row value");
    }
    row.push_back(std::move(v));
  }
  return row;
}

}  // namespace txcache
