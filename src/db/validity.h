// Validity-interval tracking for query execution (paper §5.2, Fig. 4).
//
// While a read-only query runs at snapshot S, two ranges are accumulated:
//   * result-tuple validity: the intersection of the lifetime intervals of every tuple version
//     that passed both the predicate and the visibility check (i.e. appears in the result);
//   * invalidity mask: the union of the lifetime intervals of versions that matched the
//     predicate but failed the visibility check — these are the phantoms: at timestamps inside
//     their lifetimes the query would return something different.
// The query's final validity interval is the maximal sub-interval of the result-tuple validity
// that contains S and avoids the mask.
#ifndef SRC_DB_VALIDITY_H_
#define SRC_DB_VALIDITY_H_

#include "src/db/heap.h"
#include "src/db/txn_manager.h"
#include "src/util/interval.h"

namespace txcache {

class ValidityTracker {
 public:
  // If `enabled` is false (read/write transactions, or "stock database" mode for the overhead
  // benchmark) all observations are no-ops and Finalize returns the unbounded interval.
  ValidityTracker(const TxnManager* clog, Timestamp snapshot, bool enabled)
      : clog_(clog), snapshot_(snapshot), enabled_(enabled) {}

  // Lifetime of a version whose xmin has committed: [commit(xmin), commit(xmax) or infinity).
  // An xmax that is in progress or aborted does not bound the lifetime — if the deleter later
  // commits, the invalidation stream truncates affected cache entries.
  Interval Lifetime(const TupleVersion& v) const {
    Interval iv;
    iv.lower = clog_->CommitTs(v.xmin);
    iv.upper = (v.xmax != kInvalidTxnId && clog_->IsCommitted(v.xmax)) ? clog_->CommitTs(v.xmax)
                                                                       : kTimestampInfinity;
    return iv;
  }

  void ObserveVisible(const TupleVersion& v) {
    if (!enabled_) {
      return;
    }
    result_validity_ = result_validity_.Intersect(Lifetime(v));
  }

  void ObserveInvisible(const TupleVersion& v) {
    if (!enabled_) {
      return;
    }
    // Versions whose creator never committed (in progress or aborted) are not valid at any
    // committed timestamp <= latest, so they cannot constrain the interval.
    if (!clog_->IsCommitted(v.xmin)) {
      return;
    }
    mask_.Add(Lifetime(v));
  }

  // The final validity interval. Always contains the snapshot for well-formed executions: every
  // visible tuple's lifetime contains S, and masked lifetimes never cover S.
  Interval Finalize() const {
    if (!enabled_) {
      return Interval::All();
    }
    return mask_.MaximalGapAround(snapshot_, result_validity_);
  }

  const Interval& result_validity() const { return result_validity_; }
  const IntervalSet& mask() const { return mask_; }
  bool enabled() const { return enabled_; }

 private:
  const TxnManager* clog_;
  Timestamp snapshot_;
  bool enabled_;
  Interval result_validity_ = Interval::All();
  IntervalSet mask_;
};

}  // namespace txcache

#endif  // SRC_DB_VALIDITY_H_
