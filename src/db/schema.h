// Table schemas and index definitions.
#ifndef SRC_DB_SCHEMA_H_
#define SRC_DB_SCHEMA_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/db/value.h"

namespace txcache {

using ColumnId = uint32_t;

struct Column {
  std::string name;
  ValueType type = ValueType::kNull;
  bool nullable = true;
};

struct TableSchema {
  std::string name;
  std::vector<Column> columns;

  std::optional<ColumnId> ColumnIndex(const std::string& column_name) const {
    for (ColumnId i = 0; i < columns.size(); ++i) {
      if (columns[i].name == column_name) {
        return i;
      }
    }
    return std::nullopt;
  }
};

struct IndexSchema {
  std::string name;
  std::string table;
  std::vector<ColumnId> columns;  // composite keys supported
  bool unique = false;
};

}  // namespace txcache

#endif  // SRC_DB_SCHEMA_H_
