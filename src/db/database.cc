#include "src/db/database.h"

#include <algorithm>
#include <cassert>

#include "src/db/validity.h"

namespace txcache {

namespace {

// Invalidation tag for a query-side access method (paper §5.3): index equality lookups yield a
// concrete TABLE:INDEX=KEY tag; scans yield the TABLE:? wildcard.
void AddAccessTag(const std::string& table, const AccessPath& path,
                  std::vector<InvalidationTag>* tags) {
  if (path.kind == AccessPath::Kind::kIndexEq) {
    tags->push_back(InvalidationTag::Concrete(table, path.index, EncodeRow(path.eq_key)));
  } else {
    tags->push_back(InvalidationTag::Wildcard(table));
  }
}

}  // namespace

Database::Database(const Clock* clock, Options options) : clock_(clock), options_(options) {}

Status Database::CreateTable(TableSchema schema) {
  std::lock_guard<std::mutex> lock(mu_);
  if (schema.name.empty() || schema.columns.empty()) {
    return Status::InvalidArgument("table needs a name and at least one column");
  }
  if (tables_.contains(schema.name)) {
    return Status::InvalidArgument("table already exists: " + schema.name);
  }
  auto table = std::make_unique<Table>();
  table->schema = std::move(schema);
  tables_.emplace(table->schema.name, std::move(table));
  return Status::Ok();
}

Status Database::CreateIndex(IndexSchema schema) {
  std::lock_guard<std::mutex> lock(mu_);
  Table* table = FindTableLocked(schema.table);
  if (table == nullptr) {
    return Status::InvalidArgument("no such table: " + schema.table);
  }
  if (schema.columns.empty()) {
    return Status::InvalidArgument("index needs at least one column");
  }
  for (ColumnId c : schema.columns) {
    if (c >= table->schema.columns.size()) {
      return Status::InvalidArgument("index column out of range");
    }
  }
  if (table->FindIndex(schema.name) != nullptr) {
    return Status::InvalidArgument("index already exists: " + schema.name);
  }
  auto index = std::make_unique<OrderedIndex>(std::move(schema));
  // Backfill existing versions (index creation is rare; tables are usually indexed up front).
  for (TupleId id = 0; id < table->heap.size(); ++id) {
    const TupleVersion& v = table->heap.Get(id);
    if (!v.vacuumed) {
      index->Insert(index->ExtractKey(v.row), id);
    }
  }
  table->indexes.push_back(std::move(index));
  return Status::Ok();
}

const TableSchema* Database::FindTable(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Table* t = FindTableLocked(name);
  return t == nullptr ? nullptr : &t->schema;
}

std::vector<std::string> Database::ListTables() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) {
    names.push_back(name);
  }
  return names;
}

std::vector<IndexSchema> Database::ListIndexes(const std::string& table) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<IndexSchema> out;
  const Table* t = FindTableLocked(table);
  if (t != nullptr) {
    out.reserve(t->indexes.size());
    for (const auto& index : t->indexes) {
      out.push_back(index->schema());
    }
  }
  return out;
}

Database::Table* Database::FindTableLocked(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

const Database::Table* Database::FindTableLocked(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

Result<Database::ActiveTxn*> Database::GetTxnLocked(TxnId txn) {
  auto it = active_.find(txn);
  if (it == active_.end()) {
    return Status::FailedPrecondition("transaction not active");
  }
  return &it->second;
}

TxnId Database::BeginReadWrite(bool track_reads) {
  std::lock_guard<std::mutex> lock(mu_);
  TxnId id = clog_.Begin(clog_.latest_commit_ts(), /*read_only=*/false);
  ActiveTxn& t = active_[id];
  t.id = id;
  t.read_only = false;
  t.track_reads = track_reads;
  t.snapshot = clog_.latest_commit_ts();
  return id;
}

Result<TxnId> Database::BeginReadOnly(std::optional<Timestamp> snapshot) {
  std::lock_guard<std::mutex> lock(mu_);
  Timestamp snap = snapshot.value_or(clog_.latest_commit_ts());
  if (snapshot.has_value() && *snapshot != clog_.latest_commit_ts() &&
      !clog_.IsPinned(*snapshot)) {
    return Status::NotFound("snapshot not retained (pin it first)");
  }
  if (snap > clog_.latest_commit_ts()) {
    return Status::InvalidArgument("snapshot is in the future");
  }
  TxnId id = clog_.Begin(snap, /*read_only=*/true);
  ActiveTxn& t = active_[id];
  t.id = id;
  t.read_only = true;
  t.snapshot = snap;
  return id;
}

Result<Timestamp> Database::SnapshotOf(TxnId txn) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = active_.find(txn);
  if (it == active_.end()) {
    return Status::FailedPrecondition("transaction not active");
  }
  return it->second.snapshot;
}

Result<CommitInfo> Database::Commit(TxnId txn) {
  std::lock_guard<std::mutex> lock(mu_);
  auto txn_or = GetTxnLocked(txn);
  if (!txn_or.ok()) {
    return txn_or.status();
  }
  return CommitLocked(*txn_or.value());
}

Result<CommitInfo> Database::CommitLocked(ActiveTxn& t) {
  // Publication happens while mu_ is held so that invalidation-stream sequence order always
  // matches commit-timestamp order — the invariant that lets cache nodes use "last invalidation
  // applied" as the effective upper bound of still-valid entries (§4.2).
  CommitInfo info;
  const bool wrote = !t.created.empty() || !t.stamped.empty();
  if (!wrote) {
    // Read-only (or write-free) transactions do not consume a commit timestamp; they "ran at"
    // their snapshot.
    clog_.FinishReadOnly(t.id);
    info.ts = t.snapshot;
    info.wallclock = clock_->Now();
    active_.erase(t.id);
    clog_.AdvanceLiveScanFloor();
    ++stats_.commits;
    return info;
  }
  info.ts = clog_.Commit(t.id, clock_->Now());
  info.wallclock = clock_->Now();
  ++stats_.commits;

  InvalidationMessage msg;
  if (options_.track_validity) {
    // Assemble the invalidation message: per-table tag sets, collapsed to a wildcard if the
    // transaction touched too many distinct keys in one table (§5.3).
    for (auto& [table_name, tag_set] : t.write_tags) {
      if (tag_set.size() > options_.wildcard_tag_threshold) {
        msg.tags.push_back(InvalidationTag::Wildcard(table_name));
        ++stats_.wildcard_collapses;
      } else {
        for (const InvalidationTag& tag : tag_set) {
          msg.tags.push_back(tag);
        }
      }
    }
    msg.ts = info.ts;
    msg.wallclock = info.wallclock;
    info.invalidation_tags = msg.tags.size();
    stats_.invalidation_tags += msg.tags.size();
    if (!msg.tags.empty()) {
      ++stats_.invalidation_messages;
    }
    // Fold the message into the commit-validation maps in the same critical section that
    // orders the stream: later CommitValidated calls see exactly the invalidations that
    // committed before them.
    for (const InvalidationTag& tag : msg.tags) {
      if (tag.wildcard) {
        last_wildcard_invalidation_[tag.table] = info.ts;
      } else {
        last_concrete_invalidation_[tag] = info.ts;
      }
      last_table_invalidation_[tag.table] = info.ts;
    }
  }
  active_.erase(t.id);
  clog_.AdvanceLiveScanFloor();
  if (bus_ != nullptr && !msg.tags.empty()) {
    bus_->Publish(std::move(msg));
  }
  return info;
}

Timestamp Database::LastInvalidationForLocked(const InvalidationTag& tag) const {
  if (tag.wildcard) {
    // A scan read depends on the whole table: any invalidation there conflicts.
    auto it = last_table_invalidation_.find(tag.table);
    return it == last_table_invalidation_.end() ? kTimestampZero : it->second;
  }
  Timestamp last = kTimestampZero;
  if (auto it = last_concrete_invalidation_.find(tag); it != last_concrete_invalidation_.end()) {
    last = it->second;
  }
  if (auto it = last_wildcard_invalidation_.find(tag.table);
      it != last_wildcard_invalidation_.end()) {
    last = std::max(last, it->second);
  }
  return last;
}

Result<CommitInfo> Database::CommitValidated(TxnId txn,
                                             const std::vector<ReadValidationEntry>& reads) {
  std::lock_guard<std::mutex> lock(mu_);
  auto txn_or = GetTxnLocked(txn);
  if (!txn_or.ok()) {
    return txn_or.status();
  }
  ActiveTxn& t = *txn_or.value();
  // Serialization point: a writer gets a fresh commit timestamp greater than every published
  // invalidation, so any match after valid_through is a conflict. A write-free transaction
  // serializes at its snapshot, so only matches in (valid_through, snapshot] conflict.
  const bool wrote = !t.created.empty() || !t.stamped.empty();
  for (const ReadValidationEntry& read : reads) {
    for (const InvalidationTag& tag : read.tags) {
      const Timestamp last = LastInvalidationForLocked(tag);
      if (last > read.valid_through && (wrote || last <= t.snapshot)) {
        UndoLocked(t);
        clog_.Abort(t.id);
        active_.erase(t.id);
        clog_.AdvanceLiveScanFloor();
        ++stats_.aborts;
        ++stats_.validation_conflicts;
        return Status::Conflict("read invalidated before commit: " + tag.ToString());
      }
    }
  }
  ++stats_.validated_commits;
  return CommitLocked(t);
}

Status Database::Abort(TxnId txn) {
  std::lock_guard<std::mutex> lock(mu_);
  auto txn_or = GetTxnLocked(txn);
  if (!txn_or.ok()) {
    return txn_or.status();
  }
  ActiveTxn& t = *txn_or.value();
  UndoLocked(t);
  clog_.Abort(txn);
  active_.erase(txn);
  clog_.AdvanceLiveScanFloor();
  ++stats_.aborts;
  return Status::Ok();
}

void Database::UndoLocked(ActiveTxn& txn) {
  // Created versions keep their aborted xmin; visibility skips them and vacuum reclaims them.
  // Stamped xmax marks are cleared so later writers see a clean slate.
  for (auto& [table, id] : txn.stamped) {
    TupleVersion& v = table->heap.Get(id);
    if (v.xmax == txn.id) {
      v.xmax = kInvalidTxnId;
    }
  }
}

PinnedSnapshot Database::Pin() {
  std::lock_guard<std::mutex> lock(mu_);
  Timestamp ts = clog_.latest_commit_ts();
  clog_.Pin(ts);
  return PinnedSnapshot{ts, clock_->Now()};
}

Status Database::Unpin(Timestamp snapshot) {
  std::lock_guard<std::mutex> lock(mu_);
  return clog_.Unpin(snapshot);
}

Timestamp Database::LatestCommitTs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return clog_.latest_commit_ts();
}

bool Database::IsVisible(const TupleVersion& v, Timestamp snapshot, TxnId self) const {
  if (v.xmin != self) {
    if (!clog_.IsCommitted(v.xmin) || clog_.CommitTs(v.xmin) > snapshot) {
      return false;
    }
  }
  if (v.xmax == kInvalidTxnId) {
    return true;
  }
  if (v.xmax == self) {
    return false;  // deleted by this transaction
  }
  if (!clog_.IsCommitted(v.xmax)) {
    return true;  // deleter in progress or aborted
  }
  return clog_.CommitTs(v.xmax) > snapshot;
}

template <typename Fn>
Status Database::VisitAccessPath(const Table& table, const AccessPath& path, QueryStats* stats,
                                 Fn&& fn) const {
  switch (path.kind) {
    case AccessPath::Kind::kSeqScan:
      for (TupleId id = 0; id < table.heap.size(); ++id) {
        const TupleVersion& v = table.heap.Get(id);
        if (v.vacuumed) {
          continue;
        }
        ++stats->seq_scanned;
        fn(id, v);
      }
      return Status::Ok();
    case AccessPath::Kind::kIndexEq: {
      const OrderedIndex* index = table.FindIndex(path.index);
      if (index == nullptr) {
        return Status::InvalidArgument("no such index: " + path.index);
      }
      ++stats->index_probes;
      if (const std::vector<TupleId>* bucket = index->Lookup(path.eq_key)) {
        for (TupleId id : *bucket) {
          const TupleVersion& v = table.heap.Get(id);
          if (!v.vacuumed) {
            fn(id, v);
          }
        }
      }
      return Status::Ok();
    }
    case AccessPath::Kind::kIndexRange: {
      const OrderedIndex* index = table.FindIndex(path.index);
      if (index == nullptr) {
        return Status::InvalidArgument("no such index: " + path.index);
      }
      ++stats->index_probes;
      index->Range(path.range_lo, path.range_hi, [&](const Row&, TupleId id) {
        const TupleVersion& v = table.heap.Get(id);
        if (!v.vacuumed) {
          fn(id, v);
        }
      });
      return Status::Ok();
    }
  }
  return Status::Internal("unknown access path kind");
}

Result<QueryResult> Database::Execute(TxnId txn, const Query& query) {
  std::lock_guard<std::mutex> lock(mu_);
  auto txn_or = GetTxnLocked(txn);
  if (!txn_or.ok()) {
    return txn_or.status();
  }
  return ExecuteLocked(*txn_or.value(), query);
}

Result<QueryResult> Database::ExecuteLocked(ActiveTxn& txn, const Query& query) {
  const Table* outer = FindTableLocked(query.from.table);
  if (outer == nullptr) {
    return Status::InvalidArgument("no such table: " + query.from.table);
  }
  const bool track = txn.read_only && options_.track_validity;
  // Optimistic read-write transactions collect tags too (for commit-time read validation) but
  // never validity intervals: an RW snapshot sees its own uncommitted writes, which have no
  // committed lifetime to intersect.
  const bool track_tags = track || (txn.track_reads && options_.track_validity);
  ValidityTracker tracker(&clog_, txn.snapshot, track);
  // Collected as a flat vector and deduplicated once at the end: queries touch few distinct
  // tags, and this path must stay cheap enough that tracking is "not observable" (§8.1).
  std::vector<InvalidationTag> tags;
  QueryResult result;
  QueryStats& qstats = result.stats;

  if (track_tags) {
    AddAccessTag(outer->schema.name, query.from, &tags);
  }

  // Classifies one candidate version: predicate and visibility checks in the configured order
  // (paper §5.2 evaluates predicates first to tighten the invalidity mask). Returns true if the
  // version belongs in the result.
  auto admit = [&](const TupleVersion& v, auto&& eval_predicate) -> bool {
    if (options_.predicate_before_visibility) {
      if (!eval_predicate()) {
        return false;
      }
      if (IsVisible(v, txn.snapshot, txn.id)) {
        tracker.ObserveVisible(v);
        return true;
      }
      tracker.ObserveInvisible(v);
      return false;
    }
    // Stock order: cheap visibility check first. Every invisible version encountered goes into
    // the mask (conservative), matching what an unmodified executor would have to assume.
    if (!IsVisible(v, txn.snapshot, txn.id)) {
      tracker.ObserveInvisible(v);
      return false;
    }
    return eval_predicate();
  };

  // --- outer access ---
  std::vector<Row> rows;
  Status st = VisitAccessPath(*outer, query.from, &qstats, [&](TupleId, const TupleVersion& v) {
    ++qstats.tuples_examined;
    bool keep = admit(v, [&] { return query.where == nullptr || query.where->Eval(v.row); });
    if (!options_.predicate_before_visibility && keep) {
      tracker.ObserveVisible(v);
    }
    if (keep) {
      rows.push_back(v.row);
    }
  });
  if (!st.ok()) {
    return st;
  }

  // --- index-nested-loop joins ---
  for (const JoinStep& join : query.joins) {
    const Table* inner = FindTableLocked(join.table);
    if (inner == nullptr) {
      return Status::InvalidArgument("no such table: " + join.table);
    }
    const OrderedIndex* index = inner->FindIndex(join.index);
    if (index == nullptr) {
      return Status::InvalidArgument("no such index: " + join.index);
    }
    std::vector<Row> next;
    for (Row& row : rows) {
      Row key;
      key.reserve(join.key_columns.size());
      for (uint32_t c : join.key_columns) {
        if (c >= row.size()) {
          return Status::InvalidArgument("join key column out of range");
        }
        key.push_back(row[c]);
      }
      if (track_tags) {
        // Tag the probe even when the bucket is empty: a negative result depends on the
        // continued absence of matching tuples.
        tags.push_back(InvalidationTag::Concrete(inner->schema.name, index->schema().name,
                                                 EncodeRow(key)));
      }
      ++qstats.index_probes;
      const std::vector<TupleId>* bucket = index->Lookup(key);
      if (bucket == nullptr) {
        continue;
      }
      for (TupleId id : *bucket) {
        const TupleVersion& v = inner->heap.Get(id);
        if (v.vacuumed) {
          continue;
        }
        ++qstats.tuples_examined;
        Row combined = row;
        combined.insert(combined.end(), v.row.begin(), v.row.end());
        bool keep = admit(
            v, [&] { return join.residual == nullptr || join.residual->Eval(combined); });
        if (!options_.predicate_before_visibility && keep) {
          tracker.ObserveVisible(v);
        }
        if (keep) {
          next.push_back(std::move(combined));
        }
      }
    }
    rows = std::move(next);
  }

  // --- aggregation ---
  if (query.aggregate.has_value()) {
    struct AggState {
      int64_t count = 0;
      double dsum = 0;
      int64_t isum = 0;
      bool any_double = false;
      std::optional<Value> min, max;
    };
    auto fold = [&](AggState& s, const Row& row) {
      ++s.count;
      if (query.aggregate->kind == AggKind::kCount) {
        return;
      }
      const Value& v = row[query.aggregate->column];
      if (v.is_null()) {
        return;
      }
      if (v.type() == ValueType::kDouble) {
        s.any_double = true;
        s.dsum += v.AsDouble();
      } else if (v.type() == ValueType::kInt) {
        s.isum += v.AsInt();
        s.dsum += static_cast<double>(v.AsInt());
      }
      if (!s.min.has_value() || v < *s.min) {
        s.min = v;
      }
      if (!s.max.has_value() || *s.max < v) {
        s.max = v;
      }
    };
    auto finish = [&](const AggState& s) -> Value {
      switch (query.aggregate->kind) {
        case AggKind::kCount:
          return Value(s.count);
        case AggKind::kSum:
          if (s.count == 0) {
            return Value::Null();
          }
          return s.any_double ? Value(s.dsum) : Value(s.isum);
        case AggKind::kMin:
          return s.min.value_or(Value::Null());
        case AggKind::kMax:
          return s.max.value_or(Value::Null());
        case AggKind::kAvg:
          return s.count == 0 ? Value::Null() : Value(s.dsum / static_cast<double>(s.count));
      }
      return Value::Null();
    };
    std::vector<Row> shaped;
    if (query.group_by.has_value()) {
      std::map<Value, AggState> groups;
      for (const Row& row : rows) {
        fold(groups[row[*query.group_by]], row);
      }
      shaped.reserve(groups.size());
      for (auto& [group, state] : groups) {
        shaped.push_back(Row{group, finish(state)});
      }
    } else {
      AggState state;
      for (const Row& row : rows) {
        fold(state, row);
      }
      shaped.push_back(Row{finish(state)});
    }
    rows = std::move(shaped);
  }

  // --- order by / offset / limit / projection ---
  if (!query.order_by.empty()) {
    std::stable_sort(rows.begin(), rows.end(), [&](const Row& a, const Row& b) {
      for (const OrderBy& ob : query.order_by) {
        int c = a[ob.column].Compare(b[ob.column]);
        if (c != 0) {
          return ob.descending ? c > 0 : c < 0;
        }
      }
      return false;
    });
  }
  if (query.offset > 0) {
    if (query.offset >= rows.size()) {
      rows.clear();
    } else {
      rows.erase(rows.begin(), rows.begin() + static_cast<ptrdiff_t>(query.offset));
    }
  }
  if (query.limit > 0 && rows.size() > query.limit) {
    rows.resize(query.limit);
  }
  if (!query.project.empty() && !query.aggregate.has_value()) {
    for (Row& row : rows) {
      Row projected;
      projected.reserve(query.project.size());
      for (uint32_t c : query.project) {
        if (c >= row.size()) {
          return Status::InvalidArgument("projection column out of range");
        }
        projected.push_back(std::move(row[c]));
      }
      row = std::move(projected);
    }
  }

  result.rows = std::move(rows);
  result.validity = tracker.Finalize();
  std::sort(tags.begin(), tags.end());
  tags.erase(std::unique(tags.begin(), tags.end()), tags.end());
  result.tags = std::move(tags);
  qstats.rows_returned = result.rows.size();
  ++stats_.queries;
  stats_.tuples_examined += qstats.tuples_examined;
  return result;
}

Status Database::CheckWriteConflict(const TupleVersion& v, TxnId self) const {
  if (v.xmax == kInvalidTxnId || clog_.IsAborted(v.xmax)) {
    return Status::Ok();
  }
  if (v.xmax == self) {
    return Status::Internal("double-write to one version");  // callers target visible versions
  }
  // Another transaction stamped this version. If it committed, it did so after our snapshot
  // (otherwise the version would be invisible to us): first-committer-wins. If it is still in
  // progress we conservatively fail rather than wait.
  return Status::Conflict(clog_.IsCommitted(v.xmax) ? "row updated by a committed transaction"
                                                    : "row locked by a concurrent transaction");
}

Status Database::CheckUniqueLocked(Table& table, const Row& row, TxnId self,
                                   std::optional<TupleId> skip_tuple) const {
  for (const auto& index : table.indexes) {
    if (!index->schema().unique) {
      continue;
    }
    const std::vector<TupleId>* bucket = index->Lookup(index->ExtractKey(row));
    if (bucket == nullptr) {
      continue;
    }
    for (TupleId id : *bucket) {
      if (skip_tuple.has_value() && id == *skip_tuple) {
        continue;
      }
      const TupleVersion& v = table.heap.Get(id);
      if (v.vacuumed || clog_.IsAborted(v.xmin)) {
        continue;
      }
      // A version counts as current (for uniqueness) if nothing has deleted it, or its only
      // deleter aborted, or it is being deleted by us right now (replaced by an update).
      const bool deleted =
          v.xmax != kInvalidTxnId && v.xmax != self && !clog_.IsAborted(v.xmax) &&
          clog_.IsCommitted(v.xmax);
      const bool delete_pending =
          v.xmax != kInvalidTxnId && v.xmax != self && clog_.IsInProgress(v.xmax);
      if (!deleted && !delete_pending) {
        if (v.xmax == self) {
          continue;  // we deleted it in this transaction
        }
        return Status::Conflict("unique constraint violation on " + index->schema().name);
      }
      // A pending delete by another transaction: conservatively treat the slot as occupied.
      if (delete_pending) {
        return Status::Conflict("unique slot contended on " + index->schema().name);
      }
    }
  }
  return Status::Ok();
}

void Database::AddWriteTagsLocked(ActiveTxn& txn, const Table& table, const Row& row) {
  if (!options_.track_validity) {
    return;
  }
  std::set<InvalidationTag>& tag_set = txn.write_tags[table.schema.name];
  if (table.indexes.empty()) {
    // No index to name the dependency: the whole table is the dependency.
    tag_set.insert(InvalidationTag::Wildcard(table.schema.name));
    return;
  }
  for (const auto& index : table.indexes) {
    tag_set.insert(InvalidationTag::Concrete(table.schema.name, index->schema().name,
                                             EncodeRow(index->ExtractKey(row))));
  }
}

Status Database::Insert(TxnId txn, const std::string& table_name, Row row) {
  std::lock_guard<std::mutex> lock(mu_);
  auto txn_or = GetTxnLocked(txn);
  if (!txn_or.ok()) {
    return txn_or.status();
  }
  ActiveTxn& t = *txn_or.value();
  if (t.read_only) {
    return Status::FailedPrecondition("insert in read-only transaction");
  }
  Table* table = FindTableLocked(table_name);
  if (table == nullptr) {
    return Status::InvalidArgument("no such table: " + table_name);
  }
  if (row.size() != table->schema.columns.size()) {
    return Status::InvalidArgument("row arity mismatch for " + table_name);
  }
  for (size_t i = 0; i < row.size(); ++i) {
    const Column& col = table->schema.columns[i];
    if (row[i].is_null()) {
      if (!col.nullable) {
        return Status::InvalidArgument("null in non-nullable column " + col.name);
      }
    } else if (row[i].type() != col.type) {
      return Status::InvalidArgument("type mismatch in column " + col.name);
    }
  }
  Status unique = CheckUniqueLocked(*table, row, t.id, std::nullopt);
  if (!unique.ok()) {
    ++stats_.conflicts;
    return unique;
  }
  AddWriteTagsLocked(t, *table, row);
  TupleId id = table->heap.Append(std::move(row), t.id);
  const TupleVersion& v = table->heap.Get(id);
  for (const auto& index : table->indexes) {
    index->Insert(index->ExtractKey(v.row), id);
  }
  t.created.emplace_back(table, id);
  ++stats_.inserts;
  return Status::Ok();
}

Status Database::CollectTargetsLocked(ActiveTxn& txn, Table& table, const AccessPath& path,
                                      const PredicatePtr& where, std::vector<TupleId>* out,
                                      QueryStats* stats) {
  return VisitAccessPath(table, path, stats, [&](TupleId id, const TupleVersion& v) {
    ++stats->tuples_examined;
    if (!IsVisible(v, txn.snapshot, txn.id)) {
      return;
    }
    if (where != nullptr && !where->Eval(v.row)) {
      return;
    }
    out->push_back(id);
  });
}

Result<size_t> Database::Update(TxnId txn, const std::string& table_name, const AccessPath& path,
                                const PredicatePtr& where,
                                const std::vector<std::pair<ColumnId, Value>>& sets) {
  std::lock_guard<std::mutex> lock(mu_);
  auto txn_or = GetTxnLocked(txn);
  if (!txn_or.ok()) {
    return txn_or.status();
  }
  ActiveTxn& t = *txn_or.value();
  if (t.read_only) {
    return Status::FailedPrecondition("update in read-only transaction");
  }
  Table* table = FindTableLocked(table_name);
  if (table == nullptr) {
    return Status::InvalidArgument("no such table: " + table_name);
  }
  for (const auto& [col, value] : sets) {
    if (col >= table->schema.columns.size()) {
      return Status::InvalidArgument("update column out of range");
    }
    if (!value.is_null() && value.type() != table->schema.columns[col].type) {
      return Status::InvalidArgument("type mismatch in column " +
                                     table->schema.columns[col].name);
    }
  }
  std::vector<TupleId> targets;
  QueryStats qstats;
  Status st = CollectTargetsLocked(t, *table, path, where, &targets, &qstats);
  if (!st.ok()) {
    return st;
  }
  for (TupleId id : targets) {
    TupleVersion& old_version = table->heap.Get(id);
    Status conflict = CheckWriteConflict(old_version, t.id);
    if (!conflict.ok()) {
      ++stats_.conflicts;
      return conflict;
    }
    Row new_row = old_version.row;
    for (const auto& [col, value] : sets) {
      new_row[col] = value;
    }
    Status unique = CheckUniqueLocked(*table, new_row, t.id, id);
    if (!unique.ok()) {
      ++stats_.conflicts;
      return unique;
    }
    AddWriteTagsLocked(t, *table, old_version.row);
    AddWriteTagsLocked(t, *table, new_row);
    old_version.xmax = t.id;
    t.stamped.emplace_back(table, id);
    TupleId new_id = table->heap.Append(std::move(new_row), t.id);
    const TupleVersion& nv = table->heap.Get(new_id);
    for (const auto& index : table->indexes) {
      index->Insert(index->ExtractKey(nv.row), new_id);
    }
    t.created.emplace_back(table, new_id);
  }
  stats_.updates += targets.size();
  return targets.size();
}

Result<size_t> Database::Delete(TxnId txn, const std::string& table_name, const AccessPath& path,
                                const PredicatePtr& where) {
  std::lock_guard<std::mutex> lock(mu_);
  auto txn_or = GetTxnLocked(txn);
  if (!txn_or.ok()) {
    return txn_or.status();
  }
  ActiveTxn& t = *txn_or.value();
  if (t.read_only) {
    return Status::FailedPrecondition("delete in read-only transaction");
  }
  Table* table = FindTableLocked(table_name);
  if (table == nullptr) {
    return Status::InvalidArgument("no such table: " + table_name);
  }
  std::vector<TupleId> targets;
  QueryStats qstats;
  Status st = CollectTargetsLocked(t, *table, path, where, &targets, &qstats);
  if (!st.ok()) {
    return st;
  }
  for (TupleId id : targets) {
    TupleVersion& v = table->heap.Get(id);
    Status conflict = CheckWriteConflict(v, t.id);
    if (!conflict.ok()) {
      ++stats_.conflicts;
      return conflict;
    }
    AddWriteTagsLocked(t, *table, v.row);
    v.xmax = t.id;
    t.stamped.emplace_back(table, id);
  }
  stats_.deletes += targets.size();
  return targets.size();
}

size_t Database::Vacuum() {
  std::lock_guard<std::mutex> lock(mu_);
  clog_.AdvanceLiveScanFloor();
  const Timestamp horizon = clog_.VacuumHorizon();
  size_t reclaimed = 0;
  for (auto& [name, table] : tables_) {
    for (TupleId id = 0; id < table->heap.size(); ++id) {
      TupleVersion& v = table->heap.Get(id);
      if (v.vacuumed) {
        continue;
      }
      bool dead = false;
      if (clog_.IsAborted(v.xmin)) {
        dead = true;
      } else if (clog_.IsCommitted(v.xmin) && v.xmax != kInvalidTxnId &&
                 clog_.IsCommitted(v.xmax) && clog_.CommitTs(v.xmax) <= horizon) {
        // Invisible at every snapshot >= horizon. Removing it widens future invalidity masks
        // only below the horizon, where no pinned snapshot or transaction can ever read.
        dead = true;
      }
      if (dead) {
        for (const auto& index : table->indexes) {
          index->Remove(index->ExtractKey(v.row), id);
        }
        table->heap.MarkVacuumed(id);
        ++reclaimed;
      }
    }
  }
  clog_.PruneWallClockHistory(horizon);
  ++stats_.vacuum_runs;
  stats_.versions_vacuumed += reclaimed;
  return reclaimed;
}

DatabaseStats Database::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t Database::ApproximateDataBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t bytes = 0;
  for (const auto& [name, table] : tables_) {
    bytes += table->heap.live_bytes();
  }
  return bytes;
}

size_t Database::pinned_snapshot_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return clog_.pinned_count();
}

}  // namespace txcache
