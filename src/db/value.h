// Typed values and rows for the relational engine.
#ifndef SRC_DB_VALUE_H_
#define SRC_DB_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "src/util/serde.h"

namespace txcache {

enum class ValueType : uint8_t {
  kNull = 0,
  kInt = 1,
  kDouble = 2,
  kString = 3,
  kBool = 4,
};

const char* ValueTypeName(ValueType t);

// A single column value. NULL is modeled as std::monostate. Values of different types compare by
// type tag first (NULL sorts lowest), giving indexes a total order without implicit coercions.
class Value {
 public:
  Value() : v_(std::monostate{}) {}
  Value(int64_t v) : v_(v) {}            // NOLINT(google-explicit-constructor)
  Value(int v) : v_(int64_t{v}) {}       // NOLINT(google-explicit-constructor)
  Value(double v) : v_(v) {}             // NOLINT(google-explicit-constructor)
  Value(std::string v) : v_(std::move(v)) {}  // NOLINT(google-explicit-constructor)
  Value(const char* v) : v_(std::string(v)) {}  // NOLINT(google-explicit-constructor)
  Value(bool v) : v_(v) {}               // NOLINT(google-explicit-constructor)

  static Value Null() { return Value(); }

  ValueType type() const { return static_cast<ValueType>(v_.index()); }
  bool is_null() const { return type() == ValueType::kNull; }

  int64_t AsInt() const { return std::get<int64_t>(v_); }
  double AsDouble() const { return std::get<double>(v_); }
  const std::string& AsString() const { return std::get<std::string>(v_); }
  bool AsBool() const { return std::get<bool>(v_); }

  // Total order: type tag, then value. Used by ordered indexes and ORDER BY.
  int Compare(const Value& o) const;

  bool operator==(const Value& o) const { return Compare(o) == 0; }
  bool operator!=(const Value& o) const { return Compare(o) != 0; }
  bool operator<(const Value& o) const { return Compare(o) < 0; }

  // Approximate in-memory footprint, for cache/DB byte accounting.
  size_t ByteSize() const;

  std::string ToString() const;

  void SerializeTo(Writer& w) const;
  static bool DeserializeFrom(Reader& r, Value* out);

 private:
  std::variant<std::monostate, int64_t, double, std::string, bool> v_;
};

using Row = std::vector<Value>;

size_t RowByteSize(const Row& row);
std::string RowToString(const Row& row);

// Serialized form of a row, used as index keys in invalidation tags and for cache values.
std::string EncodeRow(const Row& row);
Result<Row> DecodeRow(std::string_view bytes);

template <>
struct Serde<Value> {
  static void Write(Writer& w, const Value& v) { v.SerializeTo(w); }
  static bool Read(Reader& r, Value* out) { return Value::DeserializeFrom(r, out); }
};

}  // namespace txcache

#endif  // SRC_DB_VALUE_H_
