// No-overwrite versioned heap storage (paper §5.1).
//
// Mirrors the POSTGRES storage design the paper builds on: an UPDATE writes a new tuple version
// and stamps the old one's xmax; a DELETE only stamps xmax. Old versions stay in the heap until
// the vacuum cleaner removes those invisible to every pinned snapshot and running transaction.
// Each version's lifetime — [commit(xmin), commit(xmax)) — is exactly the per-tuple validity
// interval the validity tracker consumes (paper Fig. 4).
#ifndef SRC_DB_HEAP_H_
#define SRC_DB_HEAP_H_

#include <cstdint>
#include <deque>

#include "src/db/value.h"
#include "src/util/interval.h"
#include "src/util/types.h"

namespace txcache {

using TupleId = uint64_t;
inline constexpr TupleId kInvalidTupleId = ~0ull;

struct TupleVersion {
  Row row;
  TxnId xmin = kInvalidTxnId;  // creating transaction
  TxnId xmax = kInvalidTxnId;  // deleting transaction (kInvalidTxnId = live)
  bool vacuumed = false;       // slot reclaimed; ignore entirely
};

// Append-only tuple storage for one table. std::deque keeps references stable across appends.
class Heap {
 public:
  TupleId Append(Row row, TxnId xmin) {
    tuples_.push_back(TupleVersion{std::move(row), xmin, kInvalidTxnId, false});
    live_bytes_ += RowByteSize(tuples_.back().row);
    return tuples_.size() - 1;
  }

  TupleVersion& Get(TupleId id) { return tuples_[id]; }
  const TupleVersion& Get(TupleId id) const { return tuples_[id]; }

  void MarkVacuumed(TupleId id) {
    TupleVersion& v = tuples_[id];
    if (!v.vacuumed) {
      live_bytes_ -= RowByteSize(v.row);
      v.vacuumed = true;
      Row().swap(v.row);  // actually release the memory
      ++vacuumed_count_;
    }
  }

  size_t size() const { return tuples_.size(); }
  size_t vacuumed_count() const { return vacuumed_count_; }
  size_t live_bytes() const { return live_bytes_; }

 private:
  std::deque<TupleVersion> tuples_;
  size_t vacuumed_count_ = 0;
  size_t live_bytes_ = 0;
};

}  // namespace txcache

#endif  // SRC_DB_HEAP_H_
