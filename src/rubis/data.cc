#include "src/rubis/data.h"

#include <string>

#include "src/rubis/schema.h"

namespace txcache::rubis {

namespace {

// Deterministic filler text for descriptions/comments.
std::string Lorem(Rng& rng, size_t bytes) {
  static constexpr const char* kWords[] = {"auction", "vintage", "rare",  "mint", "boxed",
                                           "collector", "classic", "signed", "limited", "original"};
  std::string s;
  s.reserve(bytes + 12);
  while (s.size() < bytes) {
    s += kWords[rng.Uniform(0, 9)];
    s += ' ';
  }
  s.resize(bytes);
  return s;
}

Status CommitChunk(Database* db, TxnId* txn) {
  auto info = db->Commit(*txn);
  if (!info.ok()) {
    return info.status();
  }
  *txn = db->BeginReadWrite();
  return Status::Ok();
}

}  // namespace

RubisScale RubisScale::InMemory(double scale) {
  RubisScale s;
  s.users = static_cast<int64_t>(160'000 * scale);
  s.active_items = static_cast<int64_t>(35'000 * scale);
  s.old_items = static_cast<int64_t>(50'000 * scale);
  s.description_bytes = 256;
  return s;
}

RubisScale RubisScale::DiskBound(double scale) {
  RubisScale s;
  s.users = static_cast<int64_t>(1'350'000 * scale);
  s.active_items = static_cast<int64_t>(225'000 * scale);
  s.old_items = static_cast<int64_t>(1'000'000 * scale);
  s.description_bytes = 512;
  return s;
}

Result<std::unique_ptr<RubisDataset>> LoadRubis(Database* db, const RubisScale& scale,
                                                const Clock* clock, uint64_t seed) {
  Status st = CreateRubisSchema(db);
  if (!st.ok()) {
    return st;
  }
  Rng rng(seed);
  const WallClock now = clock->Now();
  const int64_t now_i = static_cast<int64_t>(now);
  constexpr size_t kChunk = 5000;  // rows per load transaction
  size_t pending = 0;

  TxnId txn = db->BeginReadWrite();
  auto maybe_chunk = [&]() -> Status {
    if (++pending % kChunk == 0) {
      return CommitChunk(db, &txn);
    }
    return Status::Ok();
  };

  for (int64_t c = 0; c < scale.categories; ++c) {
    st = db->Insert(txn, kCategories, Row{Value(c), Value("category-" + std::to_string(c))});
    if (!st.ok()) {
      return st;
    }
  }
  for (int64_t r = 0; r < scale.regions; ++r) {
    st = db->Insert(txn, kRegions, Row{Value(r), Value("region-" + std::to_string(r))});
    if (!st.ok()) {
      return st;
    }
  }

  for (int64_t u = 0; u < scale.users; ++u) {
    std::string nick = "user_" + std::to_string(u);
    st = db->Insert(txn, kUsers,
                    Row{Value(u), Value("First" + std::to_string(u)),
                        Value("Last" + std::to_string(u)), Value(nick), Value("password"),
                        Value(nick + "@rubis.example"), Value(rng.Uniform(0, 5)),
                        Value(rng.UniformReal(0, 1000.0)), Value(now_i),
                        Value(rng.Uniform(0, scale.regions - 1))});
    if (!st.ok()) {
      return st;
    }
    st = maybe_chunk();
    if (!st.ok()) {
      return st;
    }
  }

  int64_t bid_id = 0;
  int64_t comment_id = 0;
  const int64_t total_items = scale.active_items + scale.old_items;
  for (int64_t i = 0; i < total_items; ++i) {
    const bool active = i < scale.active_items;
    const char* table = active ? kItems : kOldItems;
    const int64_t category = rng.Uniform(0, scale.categories - 1);
    const int64_t region = rng.Uniform(0, scale.regions - 1);
    const int64_t seller = rng.Uniform(0, scale.users - 1);
    const double initial = rng.UniformReal(1.0, 100.0);
    const int64_t nbids = rng.Uniform(0, scale.max_bids_per_item);
    const double max_bid = nbids == 0 ? 0.0 : initial + static_cast<double>(nbids);
    // Active auctions end in the future, old ones ended in the past.
    const int64_t end_date =
        active ? now_i + Seconds(rng.Uniform(3600, 7 * 86'400))
               : now_i - Seconds(rng.Uniform(3600, 30 * 86'400));
    st = db->Insert(txn, table,
                    Row{Value(i), Value("item-" + std::to_string(i)),
                        Value(Lorem(rng, scale.description_bytes)), Value(initial),
                        Value(rng.Uniform(1, 5)), Value(initial * 1.2), Value(initial * 3.0),
                        Value(nbids), Value(max_bid), Value(now_i - Seconds(86'400)),
                        Value(end_date), Value(seller), Value(category)});
    if (!st.ok()) {
      return st;
    }
    if (active) {
      st = db->Insert(txn, kItemRegCat, Row{Value(i), Value(region), Value(category)});
      if (!st.ok()) {
        return st;
      }
    }
    for (int64_t b = 0; b < nbids; ++b) {
      st = db->Insert(txn, kBids,
                      Row{Value(bid_id++), Value(rng.Uniform(0, scale.users - 1)), Value(i),
                          Value(int64_t{1}), Value(initial + static_cast<double>(b + 1)),
                          Value(initial + static_cast<double>(b + 1) * 1.1),
                          Value(now_i - Seconds(rng.Uniform(60, 86'400)))});
      if (!st.ok()) {
        return st;
      }
      st = maybe_chunk();
      if (!st.ok()) {
        return st;
      }
    }
    st = maybe_chunk();
    if (!st.ok()) {
      return st;
    }
  }

  // A few comments per user pair to populate ViewUserInfo/AboutMe.
  const int64_t comments = scale.users * scale.max_comments_per_user / 2;
  for (int64_t c = 0; c < comments; ++c) {
    st = db->Insert(txn, kComments,
                    Row{Value(comment_id++), Value(rng.Uniform(0, scale.users - 1)),
                        Value(rng.Uniform(0, scale.users - 1)),
                        Value(rng.Uniform(0, total_items - 1)), Value(rng.Uniform(1, 5)),
                        Value(now_i - Seconds(rng.Uniform(60, 86'400))),
                        Value(Lorem(rng, 64))});
    if (!st.ok()) {
      return st;
    }
    st = maybe_chunk();
    if (!st.ok()) {
      return st;
    }
  }

  auto info = db->Commit(txn);
  if (!info.ok()) {
    return info.status();
  }

  auto dataset = std::make_unique<RubisDataset>();
  dataset->scale = scale;
  dataset->InitCounters(total_items, bid_id, comment_id, 0, scale.users);
  return dataset;
}

}  // namespace txcache::rubis
