#include "src/rubis/schema.h"

namespace txcache::rubis {

namespace {

Column Int(const char* name) { return Column{name, ValueType::kInt, false}; }
Column Str(const char* name) { return Column{name, ValueType::kString, false}; }
Column Dbl(const char* name) { return Column{name, ValueType::kDouble, false}; }

Status CreateOne(Database* db, TableSchema table, std::vector<IndexSchema> indexes) {
  Status st = db->CreateTable(std::move(table));
  if (!st.ok()) {
    return st;
  }
  for (IndexSchema& index : indexes) {
    st = db->CreateIndex(std::move(index));
    if (!st.ok()) {
      return st;
    }
  }
  return Status::Ok();
}

}  // namespace

Status CreateRubisSchema(Database* db) {
  Status st = CreateOne(
      db,
      TableSchema{kUsers,
                  {Int("id"), Str("firstname"), Str("lastname"), Str("nickname"),
                   Str("password"), Str("email"), Int("rating"), Dbl("balance"),
                   Int("creation_date"), Int("region")}},
      {IndexSchema{kUsersPk, kUsers, {UsersCol::kId}, /*unique=*/true},
       IndexSchema{kUsersByNickname, kUsers, {UsersCol::kNickname}, /*unique=*/true},
       IndexSchema{kUsersByRegion, kUsers, {UsersCol::kRegion}, /*unique=*/false}});
  if (!st.ok()) {
    return st;
  }

  const std::vector<Column> item_columns = {
      Int("id"),          Str("name"),     Str("description"), Dbl("initial_price"),
      Int("quantity"),    Dbl("reserve_price"), Dbl("buy_now"), Int("nb_of_bids"),
      Dbl("max_bid"),     Int("start_date"),    Int("end_date"), Int("seller"),
      Int("category")};
  st = CreateOne(db, TableSchema{kItems, item_columns},
                 {IndexSchema{kItemsPk, kItems, {ItemsCol::kId}, true},
                  IndexSchema{kItemsByCategory, kItems, {ItemsCol::kCategory}, false},
                  IndexSchema{kItemsBySeller, kItems, {ItemsCol::kSeller}, false}});
  if (!st.ok()) {
    return st;
  }
  st = CreateOne(db, TableSchema{kOldItems, item_columns},
                 {IndexSchema{kOldItemsPk, kOldItems, {ItemsCol::kId}, true},
                  IndexSchema{kOldItemsByCategory, kOldItems, {ItemsCol::kCategory}, false},
                  IndexSchema{kOldItemsBySeller, kOldItems, {ItemsCol::kSeller}, false}});
  if (!st.ok()) {
    return st;
  }

  st = CreateOne(db,
                 TableSchema{kBids,
                             {Int("id"), Int("user_id"), Int("item_id"), Int("qty"),
                              Dbl("bid"), Dbl("max_bid"), Int("date")}},
                 {IndexSchema{kBidsPk, kBids, {BidsCol::kId}, true},
                  IndexSchema{kBidsByItem, kBids, {BidsCol::kItemId}, false},
                  IndexSchema{kBidsByUser, kBids, {BidsCol::kUserId}, false}});
  if (!st.ok()) {
    return st;
  }

  st = CreateOne(db,
                 TableSchema{kComments,
                             {Int("id"), Int("from_user_id"), Int("to_user_id"), Int("item_id"),
                              Int("rating"), Int("date"), Str("comment")}},
                 {IndexSchema{kCommentsPk, kComments, {CommentsCol::kId}, true},
                  IndexSchema{kCommentsByToUser, kComments, {CommentsCol::kToUserId}, false},
                  IndexSchema{kCommentsByItem, kComments, {CommentsCol::kItemId}, false}});
  if (!st.ok()) {
    return st;
  }

  st = CreateOne(db,
                 TableSchema{kBuyNow,
                             {Int("id"), Int("buyer_id"), Int("item_id"), Int("qty"),
                              Int("date")}},
                 {IndexSchema{kBuyNowPk, kBuyNow, {BuyNowCol::kId}, true},
                  IndexSchema{kBuyNowByBuyer, kBuyNow, {BuyNowCol::kBuyerId}, false}});
  if (!st.ok()) {
    return st;
  }

  st = CreateOne(db, TableSchema{kCategories, {Int("id"), Str("name")}},
                 {IndexSchema{kCategoriesPk, kCategories, {CategoriesCol::kId}, true}});
  if (!st.ok()) {
    return st;
  }
  st = CreateOne(db, TableSchema{kRegions, {Int("id"), Str("name")}},
                 {IndexSchema{kRegionsPk, kRegions, {RegionsCol::kId}, true}});
  if (!st.ok()) {
    return st;
  }

  // The paper's added table: lets "items for sale in region R, category C" use one index
  // lookup instead of a sequential scan over active auctions joined with users (§7.1).
  return CreateOne(
      db,
      TableSchema{kItemRegCat, {Int("item_id"), Int("region"), Int("category")}},
      {IndexSchema{kItemRegCatByItem, kItemRegCat, {ItemRegCatCol::kItemId}, true},
       IndexSchema{kItemRegCatByRegionCat, kItemRegCat,
                   {ItemRegCatCol::kRegion, ItemRegCatCol::kCategory}, false}});
}

}  // namespace txcache::rubis
