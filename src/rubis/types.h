// Application-level result types returned by RUBiS cacheable functions. These are exactly the
// kinds of post-processed objects the paper argues are worth caching: database rows converted
// to an internal representation, or generated HTML fragments.
#ifndef SRC_RUBIS_TYPES_H_
#define SRC_RUBIS_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/serde.h"
#include "src/util/types.h"

namespace txcache::rubis {

struct ItemInfo {
  int64_t id = 0;
  std::string name;
  std::string description;
  double initial_price = 0;
  int64_t quantity = 0;
  double buy_now = 0;
  int64_t nb_of_bids = 0;
  double max_bid = 0;
  int64_t end_date = 0;
  int64_t seller = 0;
  int64_t category = 0;
  bool closed = false;  // true if found in old_items
  bool found = false;

  template <typename F>
  void ForEachField(F&& f) {
    f(id), f(name), f(description), f(initial_price), f(quantity), f(buy_now), f(nb_of_bids),
        f(max_bid), f(end_date), f(seller), f(category), f(closed), f(found);
  }
  template <typename F>
  void ForEachField(F&& f) const {
    f(id), f(name), f(description), f(initial_price), f(quantity), f(buy_now), f(nb_of_bids),
        f(max_bid), f(end_date), f(seller), f(category), f(closed), f(found);
  }
};

struct UserInfo {
  int64_t id = 0;
  std::string nickname;
  int64_t rating = 0;
  int64_t region = 0;
  int64_t creation_date = 0;
  bool found = false;

  template <typename F>
  void ForEachField(F&& f) {
    f(id), f(nickname), f(rating), f(region), f(creation_date), f(found);
  }
  template <typename F>
  void ForEachField(F&& f) const {
    f(id), f(nickname), f(rating), f(region), f(creation_date), f(found);
  }
};

struct BidInfo {
  int64_t bidder_id = 0;
  std::string bidder_nickname;
  double amount = 0;
  int64_t date = 0;

  template <typename F>
  void ForEachField(F&& f) {
    f(bidder_id), f(bidder_nickname), f(amount), f(date);
  }
  template <typename F>
  void ForEachField(F&& f) const {
    f(bidder_id), f(bidder_nickname), f(amount), f(date);
  }
};

// A rendered page: the unit of coarse-grained caching (§7.1 caches "large portions of the
// generated HTML output for each page").
struct Page {
  std::string html;

  template <typename F>
  void ForEachField(F&& f) {
    f(html);
  }
  template <typename F>
  void ForEachField(F&& f) const {
    f(html);
  }
};

}  // namespace txcache::rubis

#endif  // SRC_RUBIS_TYPES_H_
