#include "src/rubis/session.h"

namespace txcache::rubis {

namespace {

// Steady-state interaction frequencies approximating the RUBiS "bidding" mix: ~85% read-only
// browsing, ~15% read/write (paper §8). Indexed by Interaction.
constexpr double kBiddingMix[] = {
    1.5,   // Home
    0.4,   // Register (form)
    1.1,   // RegisterUser            (RW)
    4.0,   // Browse
    7.0,   // BrowseCategories
    17.0,  // SearchItemsInCategory
    2.5,   // BrowseRegions
    2.5,   // BrowseCategoriesInRegion
    6.0,   // SearchItemsInRegion
    19.0,  // ViewItem
    3.5,   // ViewUserInfo
    2.5,   // ViewBidHistory
    1.0,   // BuyNowAuth
    1.0,   // BuyNow
    1.0,   // StoreBuyNow             (RW)
    3.0,   // PutBidAuth
    4.0,   // PutBid
    8.0,   // StoreBid                (RW)
    1.0,   // PutCommentAuth
    1.0,   // PutComment
    1.5,   // StoreComment            (RW)
    1.0,   // Sell
    1.0,   // SelectCategoryToSellItem
    1.0,   // SellItemForm
    2.4,   // RegisterItem            (RW)
    2.0,   // AboutMe
};
static_assert(sizeof(kBiddingMix) / sizeof(double) == static_cast<size_t>(Interaction::kCount));

}  // namespace

const char* InteractionName(Interaction i) {
  static constexpr const char* kNames[] = {
      "Home",         "Register",     "RegisterUser",  "Browse",
      "BrowseCategories", "SearchItemsInCategory", "BrowseRegions", "BrowseCategoriesInRegion",
      "SearchItemsInRegion", "ViewItem", "ViewUserInfo", "ViewBidHistory",
      "BuyNowAuth",   "BuyNow",       "StoreBuyNow",   "PutBidAuth",
      "PutBid",       "StoreBid",     "PutCommentAuth", "PutComment",
      "StoreComment", "Sell",         "SelectCategoryToSellItem", "SellItemForm",
      "RegisterItem", "AboutMe",
  };
  return kNames[static_cast<size_t>(i)];
}

bool IsReadOnly(Interaction i) {
  switch (i) {
    case Interaction::kRegisterUser:
    case Interaction::kStoreBuyNow:
    case Interaction::kStoreBid:
    case Interaction::kStoreComment:
    case Interaction::kRegisterItem:
      return false;
    default:
      return true;
  }
}

RubisSession::RubisSession(TxCacheClient* client, RubisDataset* dataset, const Clock* clock,
                           uint64_t seed)
    : client_(client),
      dataset_(dataset),
      app_(client, dataset, clock),
      rng_(seed),
      mix_(std::vector<double>(kBiddingMix,
                               kBiddingMix + static_cast<size_t>(Interaction::kCount))),
      user_id_(dataset->PickUser(rng_)) {}

Interaction RubisSession::Next() { return static_cast<Interaction>(mix_.Pick(rng_)); }

Status RubisSession::Run(Interaction interaction) {
  Status st =
      IsReadOnly(interaction) ? RunReadOnly(interaction) : RunReadWrite(interaction);
  if (st.ok()) {
    ++stats_.completed;
    ++(IsReadOnly(interaction) ? stats_.read_only : stats_.read_write);
  } else {
    ++stats_.failed;
  }
  return st;
}

Status RubisSession::RunReadOnly(Interaction interaction) {
  Status st = client_->BeginRO();
  if (!st.ok()) {
    return st;
  }
  switch (interaction) {
    case Interaction::kHome:
    case Interaction::kBrowseCategories:
    case Interaction::kBrowseCategoriesInRegion:
    case Interaction::kSell:
    case Interaction::kSelectCategoryToSellItem:
      app_.browse_categories_page();
      break;
    case Interaction::kRegister:
    case Interaction::kBrowseRegions:
      app_.browse_regions_page();
      break;
    case Interaction::kBrowse:
      app_.browse_categories_page();
      app_.browse_regions_page();
      break;
    case Interaction::kSearchItemsInCategory:
      app_.search_category_page(dataset_->PickCategory(rng_), rng_.Uniform(0, 2));
      break;
    case Interaction::kSearchItemsInRegion:
      app_.search_region_page(dataset_->PickRegion(rng_), dataset_->PickCategory(rng_),
                              rng_.Uniform(0, 1));
      break;
    case Interaction::kViewItem:
    case Interaction::kBuyNowForm:
      app_.view_item_page(dataset_->PickActiveItem(rng_));
      break;
    case Interaction::kViewUserInfo:
    case Interaction::kPutComment:
      app_.view_user_page(dataset_->PickUser(rng_));
      break;
    case Interaction::kViewBidHistory:
      app_.bid_history_page(dataset_->PickActiveItem(rng_));
      break;
    case Interaction::kBuyNowAuth:
    case Interaction::kPutBidAuth:
    case Interaction::kPutCommentAuth:
      app_.auth_user("user_" + std::to_string(user_id_));
      break;
    case Interaction::kPutBid:
      app_.view_item_page(dataset_->PickActiveItem(rng_));
      app_.item_bids(dataset_->PickActiveItem(rng_));
      break;
    case Interaction::kSellItemForm:
      app_.get_user(user_id_);
      break;
    case Interaction::kAboutMe:
      app_.auth_user("user_" + std::to_string(user_id_));
      app_.about_me_page(user_id_);
      break;
    default:
      break;
  }
  auto commit = client_->Commit();
  return commit.ok() ? Status::Ok() : commit.status();
}

Status RubisSession::RunReadWrite(Interaction interaction) {
  if (optimistic_writes_) {
    // Optimistic path: the body re-runs on each retry round (fresh reads at a fresh
    // snapshot, fresh random picks — exactly how the emulated user would re-submit).
    const uint64_t retries_before = client_->stats().rw_retries;
    auto ts = client_->RunRwTransaction([&] { return ReadWriteBody(interaction); });
    stats_.rw_retries += client_->stats().rw_retries - retries_before;
    if (!ts.ok()) {
      if (ts.status().code() == StatusCode::kConflict) {
        ++stats_.rw_conflicts;
      }
      return ts.status();
    }
    return Status::Ok();
  }
  Status st = client_->BeginRW();
  if (!st.ok()) {
    return st;
  }
  Status op = ReadWriteBody(interaction);
  if (!op.ok()) {
    client_->Abort();
    return op;
  }
  auto commit = client_->Commit();
  return commit.ok() ? Status::Ok() : commit.status();
}

Status RubisSession::ReadWriteBody(Interaction interaction) {
  Status op = Status::Ok();
  switch (interaction) {
    case Interaction::kRegisterUser: {
      auto r = app_.RegisterUser(dataset_->PickRegion(rng_));
      op = r.ok() ? Status::Ok() : r.status();
      break;
    }
    case Interaction::kStoreBuyNow:
      op = app_.StoreBuyNow(user_id_, dataset_->PickActiveItem(rng_), 1);
      break;
    case Interaction::kStoreBid:
      op = app_.StoreBid(user_id_, dataset_->PickActiveItem(rng_),
                         rng_.UniformReal(1.0, 300.0));
      break;
    case Interaction::kStoreComment:
      op = app_.StoreComment(user_id_, dataset_->PickUser(rng_),
                             dataset_->PickAnyItem(rng_), rng_.Uniform(1, 5),
                             "great transaction");
      break;
    case Interaction::kRegisterItem: {
      auto r = app_.RegisterItem(user_id_, dataset_->PickCategory(rng_),
                                 dataset_->PickRegion(rng_), "new-item",
                                 "freshly listed auction item", rng_.UniformReal(1.0, 100.0));
      op = r.ok() ? Status::Ok() : r.status();
      break;
    }
    default:
      break;
  }
  return op;
}

}  // namespace txcache::rubis
