// RUBiS auction-site schema (paper §7.1, §8).
//
// Mirrors the RUBiS benchmark's relational schema: users, active and completed auctions, bids,
// comments, buy-now purchases, categories and regions — plus the item_reg_cat table the paper
// adds so that region+category browsing uses an index instead of a sequential scan + join.
#ifndef SRC_RUBIS_SCHEMA_H_
#define SRC_RUBIS_SCHEMA_H_

#include "src/db/database.h"

namespace txcache::rubis {

// Column indices per table. Keep in sync with CreateRubisSchema.
struct UsersCol {
  enum : ColumnId {
    kId,
    kFirstName,
    kLastName,
    kNickname,
    kPassword,
    kEmail,
    kRating,
    kBalance,
    kCreationDate,
    kRegion,
    kCount
  };
};

struct ItemsCol {
  enum : ColumnId {
    kId,
    kName,
    kDescription,
    kInitialPrice,
    kQuantity,
    kReservePrice,
    kBuyNow,
    kNbOfBids,
    kMaxBid,
    kStartDate,
    kEndDate,
    kSeller,
    kCategory,
    kCount
  };
};

struct BidsCol {
  enum : ColumnId { kId, kUserId, kItemId, kQty, kBid, kMaxBid, kDate, kCount };
};

struct CommentsCol {
  enum : ColumnId { kId, kFromUserId, kToUserId, kItemId, kRating, kDate, kComment, kCount };
};

struct BuyNowCol {
  enum : ColumnId { kId, kBuyerId, kItemId, kQty, kDate, kCount };
};

struct CategoriesCol {
  enum : ColumnId { kId, kName, kCount };
};

struct RegionsCol {
  enum : ColumnId { kId, kName, kCount };
};

struct ItemRegCatCol {
  enum : ColumnId { kItemId, kRegion, kCategory, kCount };
};

// Table names.
inline constexpr const char* kUsers = "users";
inline constexpr const char* kItems = "items";          // active auctions
inline constexpr const char* kOldItems = "old_items";   // completed auctions
inline constexpr const char* kBids = "bids";
inline constexpr const char* kComments = "comments";
inline constexpr const char* kBuyNow = "buy_now";
inline constexpr const char* kCategories = "categories";
inline constexpr const char* kRegions = "regions";
inline constexpr const char* kItemRegCat = "item_reg_cat";

// Index names.
inline constexpr const char* kUsersPk = "users_pk";
inline constexpr const char* kUsersByNickname = "users_by_nickname";
inline constexpr const char* kUsersByRegion = "users_by_region";
inline constexpr const char* kItemsPk = "items_pk";
inline constexpr const char* kItemsByCategory = "items_by_category";
inline constexpr const char* kItemsBySeller = "items_by_seller";
inline constexpr const char* kOldItemsPk = "old_items_pk";
inline constexpr const char* kOldItemsByCategory = "old_items_by_category";
inline constexpr const char* kOldItemsBySeller = "old_items_by_seller";
inline constexpr const char* kBidsPk = "bids_pk";
inline constexpr const char* kBidsByItem = "bids_by_item";
inline constexpr const char* kBidsByUser = "bids_by_user";
inline constexpr const char* kCommentsPk = "comments_pk";
inline constexpr const char* kCommentsByToUser = "comments_by_to_user";
inline constexpr const char* kCommentsByItem = "comments_by_item";
inline constexpr const char* kBuyNowPk = "buy_now_pk";
inline constexpr const char* kBuyNowByBuyer = "buy_now_by_buyer";
inline constexpr const char* kCategoriesPk = "categories_pk";
inline constexpr const char* kRegionsPk = "regions_pk";
inline constexpr const char* kItemRegCatByItem = "item_reg_cat_by_item";
inline constexpr const char* kItemRegCatByRegionCat = "item_reg_cat_by_region_cat";

// Creates all RUBiS tables and indexes on `db`.
Status CreateRubisSchema(Database* db);

}  // namespace txcache::rubis

#endif  // SRC_RUBIS_SCHEMA_H_
