// One emulated RUBiS user session: picks interactions from the "bidding" mix (85% read-only
// browsing, 15% read/write, paper §8) and runs each as a complete transaction.
#ifndef SRC_RUBIS_SESSION_H_
#define SRC_RUBIS_SESSION_H_

#include <cstdint>

#include "src/rubis/app.h"
#include "src/util/rng.h"

namespace txcache::rubis {

// The 26 RUBiS user interactions.
enum class Interaction : uint8_t {
  kHome,
  kRegister,
  kRegisterUser,
  kBrowse,
  kBrowseCategories,
  kSearchItemsInCategory,
  kBrowseRegions,
  kBrowseCategoriesInRegion,
  kSearchItemsInRegion,
  kViewItem,
  kViewUserInfo,
  kViewBidHistory,
  kBuyNowAuth,
  kBuyNowForm,
  kStoreBuyNow,
  kPutBidAuth,
  kPutBid,
  kStoreBid,
  kPutCommentAuth,
  kPutComment,
  kStoreComment,
  kSell,
  kSelectCategoryToSellItem,
  kSellItemForm,
  kRegisterItem,
  kAboutMe,
  kCount
};

const char* InteractionName(Interaction i);
bool IsReadOnly(Interaction i);

struct SessionStats {
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t read_only = 0;
  uint64_t read_write = 0;
  // Optimistic-writes mode only: abort-and-retry rounds taken inside RunRwTransaction, and
  // interactions that ultimately failed with a serialization conflict (retry budget spent).
  uint64_t rw_retries = 0;
  uint64_t rw_conflicts = 0;
};

class RubisSession {
 public:
  RubisSession(TxCacheClient* client, RubisDataset* dataset, const Clock* clock, uint64_t seed);

  // Samples the next interaction from the bidding mix.
  Interaction Next();

  // Runs one interaction as a full transaction (BEGIN .. COMMIT/ABORT). A serialization
  // conflict aborts the transaction and is counted as failed (the emulated user retries later
  // with a fresh interaction, like the RUBiS client does).
  Status Run(Interaction interaction);

  RubisApp& app() { return app_; }
  const SessionStats& stats() const { return stats_; }
  TxCacheClient* client() { return client_; }

  // Routes read/write interactions through optimistic transactions (BeginRw/RunRwTransaction):
  // reads inside the interaction are served from the cache and validated at commit, writes
  // announce advisory intents, and serialization conflicts abort-and-retry with backoff. Off
  // by default — the legacy BEGIN-RW bypass (§2.2) stays the baseline behavior.
  void set_optimistic_writes(bool on) { optimistic_writes_ = on; }
  bool optimistic_writes() const { return optimistic_writes_; }

 private:
  Status RunReadOnly(Interaction interaction);
  Status RunReadWrite(Interaction interaction);
  // The interaction's actual operations, run inside whichever transaction RunReadWrite chose.
  Status ReadWriteBody(Interaction interaction);

  TxCacheClient* client_;
  RubisDataset* dataset_;
  RubisApp app_;
  Rng rng_;
  WeightedChoice mix_;
  int64_t user_id_;  // the logged-in user this session acts as
  bool optimistic_writes_ = false;
  SessionStats stats_;
};

}  // namespace txcache::rubis

#endif  // SRC_RUBIS_SESSION_H_
