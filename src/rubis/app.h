// The RUBiS auction application, ported to TxCache the way the paper describes (§7.1):
//
//  * fine-grained cacheable functions for common lookups (item and user details, login
//    authentication, category listings) shared across pages;
//  * coarse-grained cacheable functions producing the HTML of whole pages, which call the
//    fine-grained ones (nested cacheable calls, §6.3);
//  * read/write interactions (placing bids, registering items/users, buy-now, comments) that
//    run directly on the database and drive the invalidation stream.
#ifndef SRC_RUBIS_APP_H_
#define SRC_RUBIS_APP_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/core/cacheable_function.h"
#include "src/core/txcache_client.h"
#include "src/rubis/data.h"
#include "src/rubis/types.h"
#include "src/sql/session.h"

namespace txcache::rubis {

class RubisApp {
 public:
  RubisApp(TxCacheClient* client, RubisDataset* dataset, const Clock* clock);

  // --- fine-grained cacheable functions ---
  CacheableFunction<ItemInfo, int64_t> get_item;        // looks in items, then old_items
  CacheableFunction<UserInfo, int64_t> get_user;
  CacheableFunction<int64_t, std::string> auth_user;    // nickname -> user id (-1 on failure)
  CacheableFunction<std::vector<int64_t>, int64_t, int64_t> category_items;  // (cat, page)
  CacheableFunction<std::vector<int64_t>, int64_t, int64_t, int64_t>
      region_category_items;                            // (region, cat, page)
  CacheableFunction<std::vector<BidInfo>, int64_t> item_bids;

  // --- page-granularity cacheable functions ---
  CacheableFunction<Page, int64_t> view_item_page;
  CacheableFunction<Page, int64_t> view_user_page;
  CacheableFunction<Page, int64_t> bid_history_page;
  CacheableFunction<Page, int64_t, int64_t> search_category_page;       // (cat, page)
  CacheableFunction<Page, int64_t, int64_t, int64_t> search_region_page;  // (region, cat, page)
  CacheableFunction<Page> browse_categories_page;
  CacheableFunction<Page> browse_regions_page;
  CacheableFunction<Page, int64_t> about_me_page;

  // --- read/write operations (must run inside a BEGIN-RW transaction) ---
  Status StoreBid(int64_t user, int64_t item, double amount);
  Status StoreBuyNow(int64_t user, int64_t item, int64_t qty);
  Status StoreComment(int64_t from_user, int64_t to_user, int64_t item, int64_t rating,
                      const std::string& text);
  Result<int64_t> RegisterItem(int64_t seller, int64_t category, int64_t region,
                               const std::string& name, const std::string& description,
                               double initial_price);
  Result<int64_t> RegisterUser(int64_t region);

  TxCacheClient* client() { return client_; }

  // Switches every cacheable read path to automatic tag derivation: queries are issued as
  // SQL text through a derived-mode SqlSession (src/sql/tag_deriver.h), so invalidation
  // tags come from the planner — zero hand-written Query/tag specs execute on this path.
  // Index-nested-loop joins decompose into per-row point SELECTs whose probe tags match the
  // join executor's, and listing fills keep the FillLimit decline-rate shrink (the hints
  // feedback loop paces SQL-path fills exactly like hand-written ones). Hand-written mode
  // (the default) stays runnable for diffing; write paths are unchanged in both modes.
  Status EnableDerivedTags(Database* db);
  bool derived_tags() const { return sql_ != nullptr; }

 private:
  // Hint-driven fill pacing (automatic management feedback): when the fleet's advisory hints
  // say a listing function's fills are being declined, shrink the page the fill computes —
  // there is no point paying for rows the cache refuses to store. Returns the effective row
  // limit for one listing fill; kPageSize when the hints raise no flag.
  static int64_t FillLimit(const std::optional<AdvisoryHints>& hints);

  // Announces an advisory write intent on `key` when running inside an optimistic read-write
  // transaction (no-op otherwise): the RW operations below call it with the cache keys their
  // writes are about to invalidate, so racing optimistic readers abort early instead of at
  // commit validation. A kConflict return is an early-abort signal for the caller.
  Status AnnounceIntent(const std::string& key);

  // Uncached implementations (wrapped by the cacheable functions above).
  ItemInfo GetItemImpl(int64_t id);
  UserInfo GetUserImpl(int64_t id);
  int64_t AuthUserImpl(const std::string& nickname);
  std::vector<int64_t> CategoryItemsImpl(int64_t category, int64_t page);
  std::vector<int64_t> RegionCategoryItemsImpl(int64_t region, int64_t category, int64_t page);
  std::vector<BidInfo> ItemBidsImpl(int64_t item);
  Page ViewItemPageImpl(int64_t id);
  Page ViewUserPageImpl(int64_t id);
  Page BidHistoryPageImpl(int64_t id);
  Page SearchCategoryPageImpl(int64_t category, int64_t page);
  Page SearchRegionPageImpl(int64_t region, int64_t category, int64_t page);
  Page BrowseCategoriesPageImpl();
  Page BrowseRegionsPageImpl();
  Page AboutMePageImpl(int64_t user);

  // Fetches one item row from `table` by primary key; empty if absent.
  std::vector<Row> FetchItemRow(const char* table, const char* index, int64_t id);
  // Runs `sql_text` through the derived-tag session when enabled, else the hand-written
  // query (never built in derived mode). Both must produce the same row layout. Errors
  // degrade to no rows, matching the impls' existing error handling.
  std::vector<Row> FetchRows(const std::string& sql_text,
                             const std::function<Query()>& handwritten);

  TxCacheClient* client_;
  RubisDataset* dataset_;
  const Clock* clock_;
  std::unique_ptr<sql::SqlSession> sql_;  // non-null iff derived-tag mode
};

}  // namespace txcache::rubis

#endif  // SRC_RUBIS_APP_H_
