// RUBiS dataset configuration and loader.
#ifndef SRC_RUBIS_DATA_H_
#define SRC_RUBIS_DATA_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "src/db/database.h"
#include "src/util/clock.h"
#include "src/util/rng.h"

namespace txcache::rubis {

// Dataset sizes. The paper's configurations are ~35k active / 50k old auctions / 160k users
// (in-memory, ~850 MB) and 225k / 1M / 1.35M (disk-bound, 6 GB). Benchmarks scale these down
// by a documented factor (EXPERIMENTS.md) to keep run times reasonable; `scale` = 1.0
// reproduces the paper's row counts.
struct RubisScale {
  int64_t categories = 20;
  int64_t regions = 62;
  int64_t users = 0;
  int64_t active_items = 0;
  int64_t old_items = 0;
  int64_t max_bids_per_item = 10;
  int64_t max_comments_per_user = 4;
  size_t description_bytes = 256;  // sized so scaled datasets keep realistic byte footprints

  static RubisScale InMemory(double scale);
  static RubisScale DiskBound(double scale);
};

// Post-load handle: id ranges for workload generators plus monotonic id allocators for rows
// created during a run (application-level id assignment, as RUBiS does).
class RubisDataset {
 public:
  RubisScale scale;

  int64_t NextItemId() { return next_item_id_.fetch_add(1, std::memory_order_relaxed); }
  int64_t NextBidId() { return next_bid_id_.fetch_add(1, std::memory_order_relaxed); }
  int64_t NextCommentId() { return next_comment_id_.fetch_add(1, std::memory_order_relaxed); }
  int64_t NextBuyNowId() { return next_buy_now_id_.fetch_add(1, std::memory_order_relaxed); }
  int64_t NextUserId() { return next_user_id_.fetch_add(1, std::memory_order_relaxed); }

  void InitCounters(int64_t items, int64_t bids, int64_t comments, int64_t buy_now,
                    int64_t users) {
    next_item_id_ = items;
    next_bid_id_ = bids;
    next_comment_id_ = comments;
    next_buy_now_id_ = buy_now;
    next_user_id_ = users;
  }

  // Workload pick helpers (Zipf-skewed item popularity, uniform users). The mild exponent
  // spreads the working set across a sizable fraction of the catalog, mirroring the paper's
  // observation that hit rate grows roughly linearly until the working set fits (§8.1).
  int64_t PickActiveItem(Rng& rng) const {
    return rng.Zipf(scale.active_items, 0.9) - 1;  // ids are 0-based ranks
  }
  int64_t PickAnyItem(Rng& rng) const {
    return rng.Uniform(0, scale.active_items + scale.old_items - 1);
  }
  int64_t PickUser(Rng& rng) const { return rng.Uniform(0, scale.users - 1); }
  int64_t PickCategory(Rng& rng) const { return rng.Uniform(0, scale.categories - 1); }
  int64_t PickRegion(Rng& rng) const { return rng.Uniform(0, scale.regions - 1); }

 private:
  std::atomic<int64_t> next_item_id_{0};
  std::atomic<int64_t> next_bid_id_{0};
  std::atomic<int64_t> next_comment_id_{0};
  std::atomic<int64_t> next_buy_now_id_{0};
  std::atomic<int64_t> next_user_id_{0};
};

// Creates the schema and bulk-loads a dataset. Active item ids are [0, active_items); old item
// ids are [active_items, active_items + old_items); user ids are [0, users).
Result<std::unique_ptr<RubisDataset>> LoadRubis(Database* db, const RubisScale& scale,
                                                const Clock* clock, uint64_t seed);

}  // namespace txcache::rubis

#endif  // SRC_RUBIS_DATA_H_
