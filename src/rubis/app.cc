#include "src/rubis/app.h"

#include <algorithm>
#include <sstream>

#include "src/rubis/schema.h"

namespace txcache::rubis {

namespace {
constexpr int64_t kPageSize = 20;

// Terse integer formatting for the synthesized SQL of derived-tag mode.
std::string N(int64_t v) { return std::to_string(v); }

}  // namespace

RubisApp::RubisApp(TxCacheClient* client, RubisDataset* dataset, const Clock* clock)
    : client_(client), dataset_(dataset), clock_(clock) {
  get_item = client_->MakeCacheable<ItemInfo, int64_t>(
      "rubis.get_item", [this](int64_t id) { return GetItemImpl(id); });
  get_user = client_->MakeCacheable<UserInfo, int64_t>(
      "rubis.get_user", [this](int64_t id) { return GetUserImpl(id); });
  auth_user = client_->MakeCacheable<int64_t, std::string>(
      "rubis.auth_user", [this](const std::string& nick) { return AuthUserImpl(nick); });
  category_items = client_->MakeCacheable<std::vector<int64_t>, int64_t, int64_t>(
      "rubis.category_items",
      [this](int64_t cat, int64_t page) { return CategoryItemsImpl(cat, page); });
  region_category_items =
      client_->MakeCacheable<std::vector<int64_t>, int64_t, int64_t, int64_t>(
          "rubis.region_category_items", [this](int64_t region, int64_t cat, int64_t page) {
            return RegionCategoryItemsImpl(region, cat, page);
          });
  item_bids = client_->MakeCacheable<std::vector<BidInfo>, int64_t>(
      "rubis.item_bids", [this](int64_t item) { return ItemBidsImpl(item); });

  view_item_page = client_->MakeCacheable<Page, int64_t>(
      "rubis.page.view_item", [this](int64_t id) { return ViewItemPageImpl(id); });
  view_user_page = client_->MakeCacheable<Page, int64_t>(
      "rubis.page.view_user", [this](int64_t id) { return ViewUserPageImpl(id); });
  bid_history_page = client_->MakeCacheable<Page, int64_t>(
      "rubis.page.bid_history", [this](int64_t id) { return BidHistoryPageImpl(id); });
  search_category_page = client_->MakeCacheable<Page, int64_t, int64_t>(
      "rubis.page.search_category",
      [this](int64_t cat, int64_t page) { return SearchCategoryPageImpl(cat, page); });
  search_region_page = client_->MakeCacheable<Page, int64_t, int64_t, int64_t>(
      "rubis.page.search_region", [this](int64_t region, int64_t cat, int64_t page) {
        return SearchRegionPageImpl(region, cat, page);
      });
  browse_categories_page = client_->MakeCacheable<Page>(
      "rubis.page.browse_categories", [this]() { return BrowseCategoriesPageImpl(); });
  browse_regions_page = client_->MakeCacheable<Page>(
      "rubis.page.browse_regions", [this]() { return BrowseRegionsPageImpl(); });
  about_me_page = client_->MakeCacheable<Page, int64_t>(
      "rubis.page.about_me", [this](int64_t user) { return AboutMePageImpl(user); });
}

int64_t RubisApp::FillLimit(const std::optional<AdvisoryHints>& hints) {
  if (!hints.has_value() || hints->decline_rate < 0.5) {
    return kPageSize;
  }
  // Severe decline (≥ 3 of 4 fills refused): quarter page; moderate: half page. Never below
  // one row — the page must stay renderable.
  const int64_t shrunk = hints->decline_rate >= 0.75 ? kPageSize / 4 : kPageSize / 2;
  return std::max<int64_t>(shrunk, 1);
}

Status RubisApp::AnnounceIntent(const std::string& key) {
  if (!client_->in_optimistic_rw()) {
    return Status::Ok();
  }
  return client_->WriteIntent(key);
}

Status RubisApp::EnableDerivedTags(Database* db) {
  if (db == nullptr) {
    return Status::InvalidArgument("EnableDerivedTags needs the database for the planner");
  }
  sql_ = std::make_unique<sql::SqlSession>(client_, db);
  sql_->set_tag_mode(sql::SqlSession::TagMode::kDerived);
  return Status::Ok();
}

std::vector<Row> RubisApp::FetchRows(const std::string& sql_text,
                                     const std::function<Query()>& handwritten) {
  if (sql_ != nullptr) {
    auto r = sql_->Execute(sql_text);
    return r.ok() ? std::move(r.value().rows) : std::vector<Row>{};
  }
  auto r = client_->ExecuteQuery(handwritten());
  return r.ok() ? std::move(r.value().rows) : std::vector<Row>{};
}

std::vector<Row> RubisApp::FetchItemRow(const char* table, const char* index, int64_t id) {
  return FetchRows("SELECT * FROM " + std::string(table) + " WHERE id = " + N(id), [&] {
    return Query::From(AccessPath::IndexEq(table, index, Row{Value(id)}));
  });
}

ItemInfo RubisApp::GetItemImpl(int64_t id) {
  // Looking up an item requires examining both the active and the completed auctions — the
  // paper calls this out as a function that is "more complicated than an individual query".
  ItemInfo info;
  std::vector<Row> rows = FetchItemRow(kItems, kItemsPk, id);
  bool closed = false;
  if (rows.empty()) {
    rows = FetchItemRow(kOldItems, kOldItemsPk, id);
    closed = true;
  }
  if (rows.empty()) {
    return info;  // found=false
  }
  const Row& r = rows[0];
  info.id = r[ItemsCol::kId].AsInt();
  info.name = r[ItemsCol::kName].AsString();
  info.description = r[ItemsCol::kDescription].AsString();
  info.initial_price = r[ItemsCol::kInitialPrice].AsDouble();
  info.quantity = r[ItemsCol::kQuantity].AsInt();
  info.buy_now = r[ItemsCol::kBuyNow].AsDouble();
  info.nb_of_bids = r[ItemsCol::kNbOfBids].AsInt();
  info.max_bid = r[ItemsCol::kMaxBid].AsDouble();
  info.end_date = r[ItemsCol::kEndDate].AsInt();
  info.seller = r[ItemsCol::kSeller].AsInt();
  info.category = r[ItemsCol::kCategory].AsInt();
  info.closed = closed;
  info.found = true;
  return info;
}

UserInfo RubisApp::GetUserImpl(int64_t id) {
  UserInfo info;
  std::vector<Row> rows = FetchRows("SELECT * FROM users WHERE id = " + N(id), [&] {
    return Query::From(AccessPath::IndexEq(kUsers, kUsersPk, Row{Value(id)}));
  });
  if (rows.empty()) {
    return info;
  }
  const Row& r = rows[0];
  info.id = r[UsersCol::kId].AsInt();
  info.nickname = r[UsersCol::kNickname].AsString();
  info.rating = r[UsersCol::kRating].AsInt();
  info.region = r[UsersCol::kRegion].AsInt();
  info.creation_date = r[UsersCol::kCreationDate].AsInt();
  info.found = true;
  return info;
}

int64_t RubisApp::AuthUserImpl(const std::string& nickname) {
  std::vector<Row> rows = FetchRows(
      "SELECT id FROM users WHERE nickname = " + sql::QuoteSqlString(nickname), [&] {
        return Query::From(AccessPath::IndexEq(kUsers, kUsersByNickname, Row{Value(nickname)}))
            .Project({UsersCol::kId});
      });
  return rows.empty() ? -1 : rows[0][0].AsInt();
}

std::vector<int64_t> RubisApp::CategoryItemsImpl(int64_t category, int64_t page) {
  // Fill size adapts to the fleet's advisory hints; the page offset keeps the full stride so
  // pagination never overlaps regardless of the downgrade. The same FillLimit paces both the
  // hand-written and the SQL-path fill (PR 5 follow-up).
  const int64_t limit = FillLimit(category_items.hints());
  std::vector<Row> rows = FetchRows(
      "SELECT id FROM items WHERE category = " + N(category) + " ORDER BY end_date LIMIT " +
          N(limit) + " OFFSET " + N(page * kPageSize),
      [&] {
        return Query::From(AccessPath::IndexEq(kItems, kItemsByCategory, Row{Value(category)}))
            .SortBy(ItemsCol::kEndDate)
            .Limit(limit, static_cast<size_t>(page) * kPageSize)
            .Project({ItemsCol::kId});
      });
  std::vector<int64_t> ids;
  for (const Row& r : rows) {
    ids.push_back(r[0].AsInt());
  }
  return ids;
}

std::vector<int64_t> RubisApp::RegionCategoryItemsImpl(int64_t region, int64_t category,
                                                       int64_t page) {
  // Uses the item_reg_cat table the paper adds: one composite-index lookup instead of a
  // sequential scan over active auctions joined with users (§7.1). The planner finds the
  // same composite index from the two AND-ed equalities.
  const int64_t limit = FillLimit(region_category_items.hints());
  std::vector<Row> rows = FetchRows(
      "SELECT item_id FROM item_reg_cat WHERE region = " + N(region) + " AND category = " +
          N(category) + " ORDER BY item_id LIMIT " + N(limit) + " OFFSET " +
          N(page * kPageSize),
      [&] {
        return Query::From(AccessPath::IndexEq(kItemRegCat, kItemRegCatByRegionCat,
                                               Row{Value(region), Value(category)}))
            .SortBy(ItemRegCatCol::kItemId)
            .Limit(limit, static_cast<size_t>(page) * kPageSize)
            .Project({ItemRegCatCol::kItemId});
      });
  std::vector<int64_t> ids;
  for (const Row& r : rows) {
    ids.push_back(r[0].AsInt());
  }
  return ids;
}

std::vector<BidInfo> RubisApp::ItemBidsImpl(int64_t item) {
  // Bids for an item joined with bidder nicknames (index nested-loop join on users_pk).
  std::vector<BidInfo> bids;
  const int64_t limit = FillLimit(item_bids.hints());
  if (sql_ != nullptr) {
    // Single-table SQL surface: the nickname join decomposes into per-row point SELECTs
    // (same concrete users_pk probe tags the join executor attaches).
    auto result = sql_->Execute("SELECT user_id, bid, date FROM bids WHERE item_id = " +
                                N(item) + " ORDER BY date DESC LIMIT " + N(limit));
    if (!result.ok()) {
      return bids;
    }
    for (const Row& r : result.value().rows) {
      auto user =
          sql_->Execute("SELECT nickname FROM users WHERE id = " + N(r[0].AsInt()));
      if (!user.ok() || user.value().rows.empty()) {
        continue;  // inner-join semantics: bids by vanished users are dropped
      }
      BidInfo b;
      b.bidder_id = r[0].AsInt();
      b.bidder_nickname = user.value().rows[0][0].AsString();
      b.amount = r[1].AsDouble();
      b.date = r[2].AsInt();
      bids.push_back(std::move(b));
    }
    return bids;
  }
  constexpr uint32_t kNickCol = uint32_t{BidsCol::kCount} + uint32_t{UsersCol::kNickname};
  auto result = client_->ExecuteQuery(
      Query::From(AccessPath::IndexEq(kBids, kBidsByItem, Row{Value(item)}))
          .Join(JoinStep{kUsers, kUsersPk, {BidsCol::kUserId}, nullptr})
          .SortBy(BidsCol::kDate, /*descending=*/true)
          .Limit(static_cast<size_t>(limit))
          .Project({BidsCol::kUserId, kNickCol, BidsCol::kBid, BidsCol::kDate}));
  if (result.ok()) {
    for (const Row& r : result.value().rows) {
      BidInfo b;
      b.bidder_id = r[0].AsInt();
      b.bidder_nickname = r[1].AsString();
      b.amount = r[2].AsDouble();
      b.date = r[3].AsInt();
      bids.push_back(std::move(b));
    }
  }
  return bids;
}

Page RubisApp::ViewItemPageImpl(int64_t id) {
  ItemInfo item = get_item(id);
  std::ostringstream html;
  html << "<h1>" << item.name << "</h1>";
  if (!item.found) {
    html << "<p>This item does not exist.</p>";
    return Page{html.str()};
  }
  UserInfo seller = get_user(item.seller);
  html << "<p>" << item.description << "</p>"
       << "<table><tr><td>Current bid</td><td>" << item.max_bid << "</td></tr>"
       << "<tr><td>Bids</td><td>" << item.nb_of_bids << "</td></tr>"
       << "<tr><td>Quantity</td><td>" << item.quantity << "</td></tr>"
       << "<tr><td>Buy now</td><td>" << item.buy_now << "</td></tr>"
       << "<tr><td>Seller</td><td>" << seller.nickname << " (rating " << seller.rating
       << ")</td></tr>"
       << "<tr><td>Ends</td><td>" << item.end_date << "</td></tr></table>";
  return Page{html.str()};
}

Page RubisApp::ViewUserPageImpl(int64_t id) {
  UserInfo user = get_user(id);
  std::ostringstream html;
  if (!user.found) {
    return Page{"<p>This user does not exist.</p>"};
  }
  html << "<h1>" << user.nickname << "</h1><p>rating " << user.rating << "</p><h2>Comments</h2>";
  if (sql_ != nullptr) {
    auto comments = sql_->Execute(
        "SELECT from_user_id, rating, comment FROM comments WHERE to_user_id = " + N(id) +
        " ORDER BY date DESC LIMIT " + N(kPageSize));
    if (comments.ok()) {
      for (const Row& r : comments.value().rows) {
        auto author =
            sql_->Execute("SELECT nickname FROM users WHERE id = " + N(r[0].AsInt()));
        if (!author.ok() || author.value().rows.empty()) {
          continue;  // inner-join semantics
        }
        html << "<p>" << author.value().rows[0][0].AsString() << " (" << r[1].AsInt()
             << "): " << r[2].AsString() << "</p>";
      }
    }
    return Page{html.str()};
  }
  constexpr uint32_t kFromNick = uint32_t{CommentsCol::kCount} + uint32_t{UsersCol::kNickname};
  auto result = client_->ExecuteQuery(
      Query::From(AccessPath::IndexEq(kComments, kCommentsByToUser, Row{Value(id)}))
          .Join(JoinStep{kUsers, kUsersPk, {CommentsCol::kFromUserId}, nullptr})
          .SortBy(CommentsCol::kDate, /*descending=*/true)
          .Limit(kPageSize)
          .Project({kFromNick, CommentsCol::kRating, CommentsCol::kComment}));
  if (result.ok()) {
    for (const Row& r : result.value().rows) {
      html << "<p>" << r[0].AsString() << " (" << r[1].AsInt() << "): " << r[2].AsString()
           << "</p>";
    }
  }
  return Page{html.str()};
}

Page RubisApp::BidHistoryPageImpl(int64_t id) {
  ItemInfo item = get_item(id);
  std::ostringstream html;
  html << "<h1>Bid history for " << item.name << "</h1><table>";
  for (const BidInfo& b : item_bids(id)) {
    html << "<tr><td>" << b.bidder_nickname << "</td><td>" << b.amount << "</td><td>" << b.date
         << "</td></tr>";
  }
  html << "</table>";
  return Page{html.str()};
}

Page RubisApp::SearchCategoryPageImpl(int64_t category, int64_t page) {
  std::ostringstream html;
  html << "<h1>Items in category " << category << " (page " << page << ")</h1><table>";
  for (int64_t id : category_items(category, page)) {
    ItemInfo item = get_item(id);
    html << "<tr><td>" << item.name << "</td><td>" << item.max_bid << "</td><td>"
         << item.nb_of_bids << " bids</td><td>ends " << item.end_date << "</td></tr>";
  }
  html << "</table>";
  return Page{html.str()};
}

Page RubisApp::SearchRegionPageImpl(int64_t region, int64_t category, int64_t page) {
  std::ostringstream html;
  html << "<h1>Items in region " << region << ", category " << category << "</h1><table>";
  for (int64_t id : region_category_items(region, category, page)) {
    ItemInfo item = get_item(id);
    html << "<tr><td>" << item.name << "</td><td>" << item.max_bid << "</td><td>"
         << item.nb_of_bids << " bids</td></tr>";
  }
  html << "</table>";
  return Page{html.str()};
}

Page RubisApp::BrowseCategoriesPageImpl() {
  // Sequential scan over the (small) categories table: receives a wildcard invalidation tag,
  // so the page is invalidated only when a category is added or renamed.
  std::ostringstream html;
  html << "<h1>Categories</h1><ul>";
  std::vector<Row> rows = FetchRows("SELECT id, name FROM categories ORDER BY id", [&] {
    return Query::From(AccessPath::SeqScan(kCategories)).SortBy(CategoriesCol::kId);
  });
  for (const Row& r : rows) {
    html << "<li>" << r[CategoriesCol::kName].AsString() << "</li>";
  }
  html << "</ul>";
  return Page{html.str()};
}

Page RubisApp::BrowseRegionsPageImpl() {
  std::ostringstream html;
  html << "<h1>Regions</h1><ul>";
  std::vector<Row> rows = FetchRows("SELECT id, name FROM regions ORDER BY id", [&] {
    return Query::From(AccessPath::SeqScan(kRegions)).SortBy(RegionsCol::kId);
  });
  for (const Row& r : rows) {
    html << "<li>" << r[RegionsCol::kName].AsString() << "</li>";
  }
  html << "</ul>";
  return Page{html.str()};
}

Page RubisApp::AboutMePageImpl(int64_t user) {
  UserInfo me = get_user(user);
  std::ostringstream html;
  html << "<h1>About " << me.nickname << "</h1>";

  html << "<h2>Items I am selling</h2>";
  std::vector<Row> selling = FetchRows(
      "SELECT id, name, max_bid FROM items WHERE seller = " + N(user) +
          " ORDER BY end_date LIMIT " + N(kPageSize),
      [&] {
        return Query::From(AccessPath::IndexEq(kItems, kItemsBySeller, Row{Value(user)}))
            .SortBy(ItemsCol::kEndDate)
            .Limit(kPageSize)
            .Project({ItemsCol::kId, ItemsCol::kName, ItemsCol::kMaxBid});
      });
  for (const Row& r : selling) {
    html << "<p>" << r[1].AsString() << " — current bid " << r[2].AsDouble() << "</p>";
  }

  html << "<h2>Items I bid on</h2>";
  if (sql_ != nullptr) {
    auto bidding = sql_->Execute("SELECT item_id, bid FROM bids WHERE user_id = " + N(user) +
                                 " ORDER BY date DESC LIMIT " + N(kPageSize));
    if (bidding.ok()) {
      for (const Row& r : bidding.value().rows) {
        auto item = sql_->Execute("SELECT name FROM items WHERE id = " + N(r[0].AsInt()));
        if (!item.ok() || item.value().rows.empty()) {
          continue;  // inner-join semantics: bids on closed items are dropped
        }
        html << "<p>" << item.value().rows[0][0].AsString() << " — my bid " << r[1].AsDouble()
             << "</p>";
      }
    }
  } else {
    constexpr uint32_t kItemName = uint32_t{BidsCol::kCount} + uint32_t{ItemsCol::kName};
    auto bidding = client_->ExecuteQuery(
        Query::From(AccessPath::IndexEq(kBids, kBidsByUser, Row{Value(user)}))
            .Join(JoinStep{kItems, kItemsPk, {BidsCol::kItemId}, nullptr})
            .SortBy(BidsCol::kDate, /*descending=*/true)
            .Limit(kPageSize)
            .Project({kItemName, BidsCol::kBid}));
    if (bidding.ok()) {
      for (const Row& r : bidding.value().rows) {
        html << "<p>" << r[0].AsString() << " — my bid " << r[1].AsDouble() << "</p>";
      }
    }
  }

  html << "<h2>Buy-now purchases</h2>";
  std::vector<Row> purchases = FetchRows(
      "SELECT item_id, qty FROM buy_now WHERE buyer_id = " + N(user) +
          " ORDER BY date DESC LIMIT " + N(kPageSize),
      [&] {
        return Query::From(AccessPath::IndexEq(kBuyNow, kBuyNowByBuyer, Row{Value(user)}))
            .SortBy(BuyNowCol::kDate, /*descending=*/true)
            .Limit(kPageSize)
            .Project({BuyNowCol::kItemId, BuyNowCol::kQty});
      });
  for (const Row& r : purchases) {
    ItemInfo item = get_item(r[0].AsInt());
    html << "<p>" << item.name << " ×" << r[1].AsInt() << "</p>";
  }

  html << "<h2>Comments about me</h2>";
  std::vector<Row> comments = FetchRows(
      "SELECT COUNT(*) FROM comments WHERE to_user_id = " + N(user), [&] {
        return Query::From(AccessPath::IndexEq(kComments, kCommentsByToUser, Row{Value(user)}))
            .Agg(AggKind::kCount);
      });
  if (!comments.empty()) {
    html << "<p>" << comments[0][0].AsInt() << " comments</p>";
  }
  return Page{html.str()};
}

Status RubisApp::StoreBid(int64_t user, int64_t item, double amount) {
  // Announce what this bid will invalidate before doing any work: a refused intent aborts
  // the optimistic transaction here, before the reads and writes are paid for.
  Status intent = AnnounceIntent(MakeCacheKey("rubis.get_item", item));
  if (intent.ok()) {
    intent = AnnounceIntent(MakeCacheKey("rubis.page.view_item", item));
  }
  if (!intent.ok()) {
    return intent;
  }
  auto current = client_->ExecuteQuery(
      Query::From(AccessPath::IndexEq(kItems, kItemsPk, Row{Value(item)}))
          .Project({ItemsCol::kNbOfBids, ItemsCol::kMaxBid}));
  if (!current.ok()) {
    return current.status();
  }
  if (current.value().rows.empty()) {
    return Status::NotFound("item is no longer active");
  }
  const int64_t nb = current.value().rows[0][0].AsInt();
  const double max_bid = std::max(current.value().rows[0][1].AsDouble(), amount);
  Status st = client_->Insert(
      kBids, Row{Value(dataset_->NextBidId()), Value(user), Value(item), Value(int64_t{1}),
                 Value(amount), Value(amount * 1.1),
                 Value(static_cast<int64_t>(clock_->Now()))});
  if (!st.ok()) {
    return st;
  }
  auto updated = client_->Update(kItems, AccessPath::IndexEq(kItems, kItemsPk, Row{Value(item)}),
                                 nullptr,
                                 {{ItemsCol::kNbOfBids, Value(nb + 1)},
                                  {ItemsCol::kMaxBid, Value(max_bid)}});
  return updated.ok() ? Status::Ok() : updated.status();
}

Status RubisApp::StoreBuyNow(int64_t user, int64_t item, int64_t qty) {
  Status intent = AnnounceIntent(MakeCacheKey("rubis.get_item", item));
  if (intent.ok()) {
    intent = AnnounceIntent(MakeCacheKey("rubis.page.view_item", item));
  }
  if (!intent.ok()) {
    return intent;
  }
  auto current = client_->ExecuteQuery(
      Query::From(AccessPath::IndexEq(kItems, kItemsPk, Row{Value(item)})));
  if (!current.ok()) {
    return current.status();
  }
  if (current.value().rows.empty()) {
    return Status::NotFound("item is no longer active");
  }
  Row row = current.value().rows[0];
  const int64_t have = row[ItemsCol::kQuantity].AsInt();
  const int64_t take = std::min(have, std::max<int64_t>(1, qty));
  Status st = client_->Insert(
      kBuyNow, Row{Value(dataset_->NextBuyNowId()), Value(user), Value(item), Value(take),
                   Value(static_cast<int64_t>(clock_->Now()))});
  if (!st.ok()) {
    return st;
  }
  if (take < have) {
    auto updated =
        client_->Update(kItems, AccessPath::IndexEq(kItems, kItemsPk, Row{Value(item)}), nullptr,
                        {{ItemsCol::kQuantity, Value(have - take)}});
    return updated.ok() ? Status::Ok() : updated.status();
  }
  // Sold out: the auction closes — move it to old_items, like RUBiS does. This exercises
  // delete-driven invalidations.
  auto del = client_->Delete(kItems, AccessPath::IndexEq(kItems, kItemsPk, Row{Value(item)}),
                             nullptr);
  if (!del.ok()) {
    return del.status();
  }
  auto del2 = client_->Delete(
      kItemRegCat, AccessPath::IndexEq(kItemRegCat, kItemRegCatByItem, Row{Value(item)}),
      nullptr);
  if (!del2.ok()) {
    return del2.status();
  }
  row[ItemsCol::kQuantity] = Value(int64_t{0});
  return client_->Insert(kOldItems, std::move(row));
}

Status RubisApp::StoreComment(int64_t from_user, int64_t to_user, int64_t item, int64_t rating,
                              const std::string& text) {
  Status intent = AnnounceIntent(MakeCacheKey("rubis.get_user", to_user));
  if (intent.ok()) {
    intent = AnnounceIntent(MakeCacheKey("rubis.page.view_user", to_user));
  }
  if (!intent.ok()) {
    return intent;
  }
  auto current = client_->ExecuteQuery(
      Query::From(AccessPath::IndexEq(kUsers, kUsersPk, Row{Value(to_user)}))
          .Project({UsersCol::kRating}));
  if (!current.ok()) {
    return current.status();
  }
  if (current.value().rows.empty()) {
    return Status::NotFound("no such user");
  }
  const int64_t new_rating = current.value().rows[0][0].AsInt() + rating - 3;
  Status st = client_->Insert(
      kComments, Row{Value(dataset_->NextCommentId()), Value(from_user), Value(to_user),
                     Value(item), Value(rating), Value(static_cast<int64_t>(clock_->Now())),
                     Value(text)});
  if (!st.ok()) {
    return st;
  }
  auto updated =
      client_->Update(kUsers, AccessPath::IndexEq(kUsers, kUsersPk, Row{Value(to_user)}),
                      nullptr, {{UsersCol::kRating, Value(new_rating)}});
  return updated.ok() ? Status::Ok() : updated.status();
}

Result<int64_t> RubisApp::RegisterItem(int64_t seller, int64_t category, int64_t region,
                                       const std::string& name, const std::string& description,
                                       double initial_price) {
  const int64_t id = dataset_->NextItemId();
  const int64_t now = static_cast<int64_t>(clock_->Now());
  Status st = client_->Insert(
      kItems, Row{Value(id), Value(name), Value(description), Value(initial_price),
                  Value(int64_t{1}), Value(initial_price * 1.2), Value(initial_price * 3.0),
                  Value(int64_t{0}), Value(0.0), Value(now), Value(now + Seconds(7 * 86'400)),
                  Value(seller), Value(category)});
  if (!st.ok()) {
    return st;
  }
  st = client_->Insert(kItemRegCat, Row{Value(id), Value(region), Value(category)});
  if (!st.ok()) {
    return st;
  }
  return id;
}

Result<int64_t> RubisApp::RegisterUser(int64_t region) {
  const int64_t id = dataset_->NextUserId();
  const std::string nick = "user_" + std::to_string(id);
  Status st = client_->Insert(
      kUsers, Row{Value(id), Value("First" + std::to_string(id)),
                  Value("Last" + std::to_string(id)), Value(nick), Value("password"),
                  Value(nick + "@rubis.example"), Value(int64_t{3}), Value(0.0),
                  Value(static_cast<int64_t>(clock_->Now())), Value(region)});
  if (!st.ok()) {
    return st;
  }
  return id;
}

}  // namespace txcache::rubis
